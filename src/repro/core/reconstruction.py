"""Sink-side contour-region reconstruction for one isolevel (Section 3.4).

Given the isoline reports of one isolevel, the sink:

1. builds the bounded Voronoi diagram of the isopositions (Fig. 8c);
2. cuts each cell with the *type-1 boundary*: the line through the
   isoposition perpendicular to its gradient direction.  The part of the
   cell in the gradient (descent) direction is the *outer* part, the
   opposite part -- toward higher values -- is the *inner* part (Fig. 8d);
3. merges the inner parts of all cells and complements the boundary with
   *type-2 boundaries* along cell borders where an inner part meets a
   neighbour's outer part;
4. regulates pinnacles and concaves with Rules 1 and 2 (Fig. 8e; see
   :mod:`repro.core.regulation`).

Membership in the merged (pre-regulation) region has a closed form used
by the fast raster metrics: a point belongs to the region iff, for its
*nearest* isoposition ``p`` with direction ``d``, ``(x - p) . d <= 0``.
That is exactly "x falls in the inner part of the Voronoi cell that
contains it"; a property test pins the equivalence to the polygon
pipeline.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import profiling
from repro.core.reports import IsolineReport
from repro.geometry import (
    BORDER_LABEL,
    BoundingBox,
    ConvexPolygon,
    HalfPlane,
    Interval,
    Line,
    Vec,
    bounded_voronoi,
    dist_sq,
    dot,
    normalize,
    subtract_intervals,
)
from repro.geometry.lines import param_on_line
from repro.geometry.polyline import (
    BORDER,
    TYPE1,
    TYPE2,
    BoundarySegment,
    loop_points,
    stitch_segments_into_loops,
)
from repro.geometry.voronoi import CellLocality, VoronoiCell, recompute_cell

#: Edge label for the type-1 cut chord inside a Voronoi cell.  Distinct
#: from BORDER_LABEL (-1) and from all site indices (>= 0).
CUT_LABEL = -2

#: Coincident isopositions closer than this are deduplicated before the
#: Voronoi construction (their bisector would be undefined).
DEDUPE_TOL = 1e-6

#: Scratch budget for the blocked raster-membership kernel: the distance
#: matrix of one block holds at most this many float64 values (~8 MB).
_MEMBERSHIP_BLOCK_FLOATS = 1 << 20


@dataclass
class LevelRegion:
    """The reconstructed contour region at (or above) one isolevel.

    Attributes:
        isolevel: the region's isolevel.
        bounds: the field extent.
        reports: the (deduplicated) reports the reconstruction used.
        cells: the Voronoi cells, parallel to ``reports``.
        inner_polys: each cell's inner part, parallel to ``cells``
            (possibly empty polygons).
        loops: merged boundary loops before regulation.
        regulated_loops: boundary loops after Rule-1/Rule-2 regulation.
        regulation_stats: counts of applied rules, for diagnostics.
    """

    isolevel: float
    bounds: BoundingBox
    reports: List[IsolineReport]
    cells: List[VoronoiCell]
    inner_polys: List[ConvexPolygon]
    loops: List[List[BoundarySegment]] = field(default_factory=list)
    regulated_loops: List[List[BoundarySegment]] = field(default_factory=list)
    regulation_stats: Dict[str, int] = field(default_factory=dict)

    # Vectorised report arrays, built lazily for the raster classifier.
    _positions_arr: Optional[np.ndarray] = None
    _directions_arr: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def contains(self, p: Vec) -> bool:
        """Implicit membership: inner side of the nearest report's cut.

        Equivalent to membership in the merged inner parts (the Voronoi
        cell containing ``p`` belongs to the nearest isoposition, and the
        inner half of that cell is where ``(p - site) . d <= 0``).
        """
        if not self.reports:
            return False
        best = min(
            self.reports, key=lambda r: dist_sq(p, r.position)
        )
        dx = p[0] - best.position[0]
        dy = p[1] - best.position[1]
        return dx * best.direction[0] + dy * best.direction[1] <= 0.0

    def contains_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` for an ``(n, 2)`` array of points.

        Points are processed in blocks so the ``(block, m)`` distance
        matrix stays memory-bounded regardless of the raster size; the
        per-point ``argmin`` (first index on ties, like the scalar
        ``min``) is unaffected by the blocking.
        """
        if not self.reports:
            return np.zeros(len(points), dtype=bool)
        if self._positions_arr is None:
            self._positions_arr = np.array(
                [r.position for r in self.reports], dtype=float
            )
            self._directions_arr = np.array(
                [r.direction for r in self.reports], dtype=float
            )
        pts = np.asarray(points, dtype=float)
        n = len(pts)
        m = len(self._positions_arr)
        out = np.empty(n, dtype=bool)
        # ~8 MB of float64 scratch per block at the default budget.
        block = max(1, _MEMBERSHIP_BLOCK_FLOATS // max(1, m))
        px = self._positions_arr[:, 0]
        py = self._positions_arr[:, 1]
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            chunk = pts[lo:hi]
            # (block, m) squared distances; nearest report per point.
            d2 = (chunk[:, 0:1] - px[None, :]) ** 2
            d2 += (chunk[:, 1:2] - py[None, :]) ** 2
            nearest = d2.argmin(axis=1)
            rel = chunk - self._positions_arr[nearest]
            dirs = self._directions_arr[nearest]
            out[lo:hi] = (rel * dirs).sum(axis=1) <= 0.0
        return out

    # ------------------------------------------------------------------
    # Geometry accessors
    # ------------------------------------------------------------------

    def area(self) -> float:
        """Area of the merged inner parts (pre-regulation)."""
        return sum(poly.area() for poly in self.inner_polys)

    def boundary_polylines(self, regulated: bool = True) -> List[List[Vec]]:
        """Closed boundary rings as vertex lists."""
        loops = self.regulated_loops if regulated else self.loops
        return [loop_points(lp) for lp in loops if len(lp) >= 2]

    def isoline_polylines(self, regulated: bool = True) -> List[List[Vec]]:
        """The estimated *isolines*: boundary runs excluding field-border
        segments.

        The true isoline never runs along the field border; dropping
        BORDER segments makes the result comparable with marching-squares
        ground truth in the Hausdorff metric (Fig. 12).
        """
        loops = self.regulated_loops if regulated else self.loops
        polylines: List[List[Vec]] = []
        for lp in loops:
            run: List[Vec] = []
            for seg in lp:
                if seg.kind == BORDER:
                    if len(run) >= 2:
                        polylines.append(run)
                    run = []
                else:
                    if not run:
                        run = [seg.a, seg.b]
                    else:
                        run.append(seg.b)
            if len(run) >= 2:
                polylines.append(run)
        return polylines


def build_level_region(
    isolevel: float,
    reports: Sequence[IsolineReport],
    bounds: BoundingBox,
    regulate: bool = True,
) -> LevelRegion:
    """Run the full single-level reconstruction (steps 1-4 above).

    Raises:
        ValueError: when no reports are given (an empty level is handled
            one layer up, by :class:`repro.core.contour_map.ContourMap`).
    """
    with profiling.stage("reconstruction.dedupe"):
        deduped = _dedupe_reports(reports)
    if not deduped:
        raise ValueError("cannot reconstruct a level without reports")
    region, _ = _region_from_deduped(isolevel, deduped, bounds, regulate)
    return region


def _region_from_deduped(
    isolevel: float,
    deduped: List[IsolineReport],
    bounds: BoundingBox,
    regulate: bool,
) -> Tuple[LevelRegion, List[List[BoundarySegment]]]:
    """From-scratch reconstruction of already-deduplicated reports.

    Shared by :func:`build_level_region` and the full-rebuild path of
    :class:`ReconstructionCache`; additionally returns the boundary
    segments grouped per cell, which the cache retains for splicing.
    """
    sites = [r.position for r in deduped]
    with profiling.stage("reconstruction.voronoi"):
        cells = bounded_voronoi(sites, bounds)

    with profiling.stage("reconstruction.inner_cut"):
        inner_polys: List[ConvexPolygon] = []
        for cell, report in zip(cells, deduped):
            inner_polys.append(_inner_part(cell, report))

    with profiling.stage("reconstruction.boundary"):
        cell_segments = _boundary_segments_by_cell(cells, inner_polys, sites)
        loops = stitch_segments_into_loops(
            [s for segs in cell_segments for s in segs]
        )

    region = LevelRegion(
        isolevel=isolevel,
        bounds=bounds,
        reports=deduped,
        cells=cells,
        inner_polys=inner_polys,
        loops=loops,
    )
    return _finish_region(region, regulate), cell_segments


def _finish_region(region: LevelRegion, regulate: bool) -> LevelRegion:
    """Apply (or skip) boundary regulation -- the common assembly tail."""
    if regulate:
        from repro.core.regulation import regulate_loops

        with profiling.stage("reconstruction.regulate"):
            region.regulated_loops, region.regulation_stats = regulate_loops(
                region.loops, region.reports
            )
    else:
        region.regulated_loops = region.loops
        region.regulation_stats = {"rule1": 0, "rule2": 0}
    return region


def build_level_region_reference(
    isolevel: float,
    reports: Sequence[IsolineReport],
    bounds: BoundingBox,
    regulate: bool = True,
) -> LevelRegion:
    """Reconstruction composed entirely of the retained scalar reference
    kernels (pairwise dedupe, per-site-sorted Voronoi, rescanning boundary
    extraction).  Exists so the differential tests can pin the fast
    pipeline against it end to end; produces bit-identical regions.
    """
    from repro.geometry.voronoi import bounded_voronoi_reference

    deduped = _dedupe_reports_reference(reports)
    if not deduped:
        raise ValueError("cannot reconstruct a level without reports")

    sites = [r.position for r in deduped]
    cells = bounded_voronoi_reference(sites, bounds)

    inner_polys = [_inner_part(c, r) for c, r in zip(cells, deduped)]
    segments = _boundary_segments_reference(cells, inner_polys, sites)
    loops = stitch_segments_into_loops(segments)

    region = LevelRegion(
        isolevel=isolevel,
        bounds=bounds,
        reports=deduped,
        cells=cells,
        inner_polys=inner_polys,
        loops=loops,
    )
    if regulate:
        from repro.core.regulation import regulate_loops

        region.regulated_loops, region.regulation_stats = regulate_loops(
            loops, deduped
        )
    else:
        region.regulated_loops = loops
        region.regulation_stats = {"rule1": 0, "rule2": 0}
    return region


# ----------------------------------------------------------------------
# Incremental (epoch-delta) reconstruction
# ----------------------------------------------------------------------


@dataclass
class ReconstructionStats:
    """Counters describing how a :class:`ReconstructionCache` ran.

    ``last_*`` fields describe the most recent :meth:`update`; the rest
    accumulate over the cache's lifetime.  A full rebuild counts every
    cell as recomputed.
    """

    epochs: int = 0
    full_rebuilds: int = 0
    incremental_updates: int = 0
    cells_recomputed: int = 0
    cells_retained: int = 0
    last_full_rebuild: bool = False
    last_dirty_fraction: float = 1.0
    last_cells_total: int = 0
    last_cells_recomputed: int = 0
    last_segments_rebuilt: int = 0


class ReconstructionCache:
    """Incremental single-level reconstruction across monitoring epochs.

    The continuous-monitoring sink receives a small *delta* of its report
    cache each epoch (new/changed reports, retractions), yet
    :func:`build_level_region` pays the full Voronoi + boundary cost --
    ~90% of it in the Voronoi construction -- for the mostly-unchanged
    remainder.  This cache exploits Voronoi locality instead: a changed
    site can only perturb cells whose guard neighbourhood it touches
    (:func:`repro.geometry.voronoi.cell_guard_radius`), so each
    :meth:`update`

    1. dedupes the reports and diffs them against the previous epoch by
       source (added / removed / moved / rotated);
    2. marks dirty every cell the changed positions can reach
       (:class:`repro.geometry.voronoi.CellLocality`, an exact per-cell
       test from the last-cutter radius and the final ring) and rebuilds
       only those cells (:func:`repro.geometry.voronoi.recompute_cell`);
    3. retains every other cell and inner part verbatim (renumbering
       edge labels when retractions shift site indices), recomputes the
       type-1 cut only where the gradient direction changed, and splices
       retained boundary segments with freshly extracted ones for the
       dirty cells and their Voronoi neighbours;
    4. restitches loops and re-regulates globally (both are cheap
       relative to the Voronoi stage).

    The result is **bit-identical** to ``build_level_region`` on the same
    reports -- retained geometry is reused object-for-object and dirty
    geometry is recomputed with the exact kernels of the full path, so
    not a single float differs (the differential tests assert exact
    equality across seeded epoch sequences).  When the dirty fraction
    exceeds ``full_rebuild_threshold`` the cache falls back to the full
    path, which is faster than splicing a mostly-dirty map.

    Not thread-safe; one cache serves one isolevel.
    """

    def __init__(
        self,
        isolevel: float,
        bounds: BoundingBox,
        regulate: bool = True,
        full_rebuild_threshold: float = 0.35,
    ):
        if not 0.0 <= full_rebuild_threshold <= 1.0:
            raise ValueError("full_rebuild_threshold must be within [0, 1]")
        self.isolevel = isolevel
        self.bounds = bounds
        self.regulate = regulate
        self.full_rebuild_threshold = full_rebuild_threshold
        self.stats = ReconstructionStats()
        self._region: Optional[LevelRegion] = None
        self._index_of: Dict[int, int] = {}
        self._cell_segments: List[List[BoundarySegment]] = []
        self._locality: Optional[CellLocality] = None

    @property
    def region(self) -> Optional[LevelRegion]:
        """The retained region of the last :meth:`update` (None initially)."""
        return self._region

    def reset(self) -> None:
        """Drop all retained state; the next :meth:`update` rebuilds fully."""
        self._region = None
        self._index_of = {}
        self._cell_segments = []
        self._locality = None

    def update(self, reports: Sequence[IsolineReport]) -> LevelRegion:
        """Reconstruct this level's region for the epoch's report set.

        ``reports`` is the *complete* current report set (the sink cache
        for this isolevel), not the delta -- the cache derives the delta
        itself by source id, which keeps it correct even when callers
        and dedupe disagree about which duplicate report survives.

        Raises:
            ValueError: when ``reports`` is empty (an empty level is
                handled one layer up; see :func:`build_level_region`).
        """
        self.stats.epochs += 1
        with profiling.stage("reconstruction.dedupe"):
            deduped = _dedupe_reports(reports)
        if not deduped:
            raise ValueError("cannot reconstruct a level without reports")
        if self._region is None:
            return self._install_full(deduped)

        prev = self._region
        old_reports = prev.reports
        old_index = self._index_of
        m_new = len(deduped)

        with profiling.stage("reconstruction.delta.diff"):
            new_index = {r.source: k for k, r in enumerate(deduped)}
            recompute: Set[int] = set()  # new indices needing a fresh cell
            cut_dirty: Set[int] = set()  # retained cells, changed cut line
            remap: Dict[int, int] = {}  # old -> new index, stable positions
            added_pts: List[Vec] = []
            removed_pts: List[Vec] = []
            for k, r in enumerate(deduped):
                ok = old_index.get(r.source)
                if ok is None:
                    recompute.add(k)
                    added_pts.append(r.position)
                    continue
                old_r = old_reports[ok]
                if old_r.position != r.position:
                    recompute.add(k)
                    removed_pts.append(old_r.position)
                    added_pts.append(r.position)
                else:
                    remap[ok] = k
                    if old_r.direction != r.direction:
                        cut_dirty.add(k)
            for source, ok in old_index.items():
                if source not in new_index:
                    removed_pts.append(old_reports[ok].position)

        with profiling.stage("reconstruction.delta.locality"):
            # A position-stable survivor keeps its cell only when the
            # exact locality test clears it against every changed point.
            old_of_new: Dict[int, int] = {}
            if remap:
                affected = self._locality.affected(added_pts, removed_pts)
                for ok, k in remap.items():
                    if affected[ok]:
                        recompute.add(k)
                    else:
                        old_of_new[k] = ok

        dirty_fraction = len(recompute) / m_new
        if dirty_fraction > self.full_rebuild_threshold:
            return self._install_full(deduped, dirty_fraction=dirty_fraction)

        # Retained labels reference position-stable survivors only (any
        # neighbour that changed would have dirtied the cell), so `remap`
        # covers them; when no retraction shifted indices the remap is
        # the identity and retained objects are reused without copying.
        identity = all(ok == k for ok, k in remap.items())
        sites = [r.position for r in deduped]
        arr = np.asarray(sites, dtype=float)
        xs = arr[:, 0]
        ys = arr[:, 1]
        old_cells = prev.cells

        with profiling.stage("reconstruction.delta.cells"):
            cells: List[VoronoiCell] = []
            for k, r in enumerate(deduped):
                ok = old_of_new.get(k)
                if ok is None:
                    cells.append(
                        recompute_cell(k, r.position, xs, ys, self.bounds)
                    )
                elif identity:
                    cells.append(old_cells[ok])
                else:
                    oc = old_cells[ok]
                    labels = [
                        remap[lab] if lab >= 0 else lab
                        for lab in oc.polygon.labels
                    ]
                    cells.append(
                        VoronoiCell(
                            k,
                            oc.site,
                            oc.polygon.with_labels(labels),
                            {remap[j] for j in oc.neighbors},
                        )
                    )

        with profiling.stage("reconstruction.delta.inner"):
            old_inner = prev.inner_polys
            inner_polys: List[ConvexPolygon] = []
            for k, r in enumerate(deduped):
                ok = old_of_new.get(k)
                if ok is None or k in cut_dirty:
                    inner_polys.append(_inner_part(cells[k], r))
                elif identity:
                    inner_polys.append(old_inner[ok])
                else:
                    op = old_inner[ok]
                    labels = [
                        remap[lab] if lab >= 0 else lab for lab in op.labels
                    ]
                    inner_polys.append(op.with_labels(labels))

        with profiling.stage("reconstruction.delta.boundary"):
            # A cell's segments depend on its own inner part and its
            # neighbours' (twin-edge interval subtraction), so the dirty
            # set for segments is the inner-dirty cells plus neighbours.
            inner_dirty = recompute | cut_dirty
            seg_dirty = set(inner_dirty)
            for k in inner_dirty:
                seg_dirty.update(cells[k].neighbors)
            by_site = {c.site_index: k for k, c in enumerate(cells)}
            edge_index: _EdgeIndex = [None] * m_new
            cell_segments: List[List[BoundarySegment]] = []
            rebuilt = 0
            for k in range(m_new):
                ok = old_of_new.get(k)
                if ok is None or k in seg_dirty:
                    rebuilt += 1
                    segs = _cell_boundary_segments(
                        k, cells, inner_polys, sites, by_site, edge_index
                    )
                elif identity:
                    segs = self._cell_segments[ok]
                else:
                    segs = [
                        BoundarySegment(
                            s.a,
                            s.b,
                            s.kind,
                            cell=remap[s.cell],
                            other=remap[s.other] if s.other >= 0 else s.other,
                        )
                        for s in self._cell_segments[ok]
                    ]
                cell_segments.append(segs)

        with profiling.stage("reconstruction.delta.stitch"):
            loops = stitch_segments_into_loops(
                [s for segs in cell_segments for s in segs]
            )

        region = LevelRegion(
            isolevel=self.isolevel,
            bounds=self.bounds,
            reports=deduped,
            cells=cells,
            inner_polys=inner_polys,
            loops=loops,
        )
        region = _finish_region(region, self.regulate)

        with profiling.stage("reconstruction.delta.locality_table"):
            locality = CellLocality.splice(self._locality, old_of_new, cells, arr)

        self._region = region
        self._index_of = new_index
        self._cell_segments = cell_segments
        self._locality = locality

        st = self.stats
        st.incremental_updates += 1
        st.last_full_rebuild = False
        st.last_dirty_fraction = dirty_fraction
        st.last_cells_total = m_new
        st.last_cells_recomputed = len(recompute)
        st.last_segments_rebuilt = rebuilt
        st.cells_recomputed += len(recompute)
        st.cells_retained += m_new - len(recompute)
        return region

    def _install_full(
        self, deduped: List[IsolineReport], dirty_fraction: float = 1.0
    ) -> LevelRegion:
        """From-scratch build; retains everything the delta path needs."""
        region, cell_segments = _region_from_deduped(
            self.isolevel, deduped, self.bounds, self.regulate
        )
        self._region = region
        self._index_of = {r.source: k for k, r in enumerate(deduped)}
        self._cell_segments = cell_segments
        with profiling.stage("reconstruction.delta.locality_table"):
            self._locality = CellLocality.from_cells(
                region.cells,
                np.asarray([r.position for r in deduped], dtype=float),
            )
        st = self.stats
        m = len(region.cells)
        st.full_rebuilds += 1
        st.last_full_rebuild = True
        st.last_dirty_fraction = dirty_fraction
        st.last_cells_total = m
        st.last_cells_recomputed = m
        st.last_segments_rebuilt = m
        st.cells_recomputed += m
        return region


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _dedupe_reports(reports: Sequence[IsolineReport]) -> List[IsolineReport]:
    """Drop reports whose position coincides with an earlier one.

    Spatial-hash pass: kept positions are bucketed on a DEDUPE_TOL-sized
    grid, so each report only compares against kept reports in its 3x3
    bucket neighbourhood (any position within DEDUPE_TOL is at most one
    bucket away).  First-report-wins order is identical to the pairwise
    :func:`_dedupe_reports_reference`, which the tests pin; expected cost
    is O(k) instead of O(k^2).
    """
    kept: List[IsolineReport] = []
    buckets: Dict[Tuple[int, int], List[Vec]] = {}
    inv = 1.0 / DEDUPE_TOL
    tol_sq = DEDUPE_TOL**2
    for r in reports:
        x, y = r.position
        bx = math.floor(x * inv)
        by = math.floor(y * inv)
        coincides = False
        for kx in (bx - 1, bx, bx + 1):
            for ky in (by - 1, by, by + 1):
                for pos in buckets.get((kx, ky), ()):
                    if dist_sq(r.position, pos) <= tol_sq:
                        coincides = True
                        break
                if coincides:
                    break
            if coincides:
                break
        if not coincides:
            kept.append(r)
            buckets.setdefault((bx, by), []).append(r.position)
    return kept


def _dedupe_reports_reference(
    reports: Sequence[IsolineReport],
) -> List[IsolineReport]:
    """All-pairs dedupe (retained reference for :func:`_dedupe_reports`)."""
    kept: List[IsolineReport] = []
    for r in reports:
        if all(dist_sq(r.position, k.position) > DEDUPE_TOL**2 for k in kept):
            kept.append(r)
    return kept


def _inner_part(cell: VoronoiCell, report: IsolineReport) -> ConvexPolygon:
    """The inner half of a cell: the side *against* the descent direction.

    The separating line passes through the isoposition perpendicular to
    the gradient direction ``d``; "the part in the gradient direction is
    the outer part" (Section 3.4), so the inner part satisfies
    ``(x - p) . d <= 0``.
    """
    d = normalize(report.direction)
    hp = HalfPlane(d, dot(d, report.position))
    return cell.polygon.clip(hp, CUT_LABEL)


def _boundary_segments(
    cells: List[VoronoiCell],
    inner_polys: List[ConvexPolygon],
    sites: List[Vec],
) -> List[BoundarySegment]:
    """Extract the merged region's boundary from the per-cell inner parts.

    - Cut-chord edges are type-1 boundary, always.
    - Field-border edges of inner parts are boundary (of kind BORDER).
    - A shared Voronoi edge contributes the portions covered by exactly
      one of the two adjacent inner parts (symmetric difference), found by
      1-D interval subtraction along the bisector line; these are type-2.

    Each inner part's edges are indexed by label once (lazily), so every
    type-2 edge finds its twin edges in one dict lookup instead of
    rescanning the neighbour's whole edge list -- O(edges) overall where
    the retained :func:`_boundary_segments_reference` is O(edges * degree).
    Hole order within a label follows ``edges()`` order either way, so the
    interval subtraction (and hence the output) is bit-identical.
    """
    segments: List[BoundarySegment] = []
    for segs in _boundary_segments_by_cell(cells, inner_polys, sites):
        segments.extend(segs)
    return segments


#: Lazily-built per-inner-polygon edge index: ``label -> twin edges``.
_EdgeIndex = List[Optional[Dict[int, List[Tuple[Vec, Vec]]]]]


def _boundary_segments_by_cell(
    cells: List[VoronoiCell],
    inner_polys: List[ConvexPolygon],
    sites: List[Vec],
) -> List[List[BoundarySegment]]:
    """The segments of :func:`_boundary_segments`, grouped per cell.

    Flattening in cell order reproduces the flat extraction exactly;
    the grouping exists so :class:`ReconstructionCache` can retain and
    splice clean cells' segments across epochs.
    """
    by_site = {c.site_index: k for k, c in enumerate(cells)}
    edge_index: _EdgeIndex = [None] * len(inner_polys)
    return [
        _cell_boundary_segments(k, cells, inner_polys, sites, by_site, edge_index)
        for k in range(len(cells))
    ]


def _twin_edges(
    inner_polys: List[ConvexPolygon],
    edge_index: _EdgeIndex,
    poly_k: int,
    label: int,
) -> List[Tuple[Vec, Vec]]:
    index = edge_index[poly_k]
    if index is None:
        index = {}
        for c, d, lab in inner_polys[poly_k].edges():
            index.setdefault(lab, []).append((c, d))
        edge_index[poly_k] = index
    return index.get(label, [])


def _cell_boundary_segments(
    k: int,
    cells: List[VoronoiCell],
    inner_polys: List[ConvexPolygon],
    sites: List[Vec],
    by_site: Dict[int, int],
    edge_index: _EdgeIndex,
) -> List[BoundarySegment]:
    """Boundary segments contributed by cell ``k`` alone."""
    cell = cells[k]
    inner = inner_polys[k]
    segments: List[BoundarySegment] = []
    if inner.is_empty:
        return segments
    i = cell.site_index
    for a, b, label in inner.edges():
        if label == CUT_LABEL:
            segments.append(BoundarySegment(a, b, TYPE1, cell=i))
        elif label == BORDER_LABEL:
            segments.append(BoundarySegment(a, b, BORDER, cell=i))
        else:
            j = label
            bisector = _bisector_line(sites[i], sites[j])
            ta = param_on_line(bisector, a)
            tb = param_on_line(bisector, b)
            holes = [
                Interval(param_on_line(bisector, c), param_on_line(bisector, d))
                for (c, d) in _twin_edges(inner_polys, edge_index, by_site[j], i)
            ]
            remaining = subtract_intervals(Interval(ta, tb), holes)
            for iv in remaining:
                segments.append(
                    BoundarySegment(
                        _point_at_param(bisector, iv.lo),
                        _point_at_param(bisector, iv.hi),
                        TYPE2,
                        cell=i,
                        other=j,
                    )
                )
    return segments


def _boundary_segments_reference(
    cells: List[VoronoiCell],
    inner_polys: List[ConvexPolygon],
    sites: List[Vec],
) -> List[BoundarySegment]:
    """Rescanning extraction (retained reference for
    :func:`_boundary_segments`)."""
    by_site = {c.site_index: k for k, c in enumerate(cells)}
    segments: List[BoundarySegment] = []

    for k, (cell, inner) in enumerate(zip(cells, inner_polys)):
        if inner.is_empty:
            continue
        i = cell.site_index
        for a, b, label in inner.edges():
            if label == CUT_LABEL:
                segments.append(BoundarySegment(a, b, TYPE1, cell=i))
            elif label == BORDER_LABEL:
                segments.append(BoundarySegment(a, b, BORDER, cell=i))
            else:
                j = label
                neighbor_inner = inner_polys[by_site[j]]
                bisector = _bisector_line(sites[i], sites[j])
                uncovered = _uncovered_portions(bisector, (a, b), neighbor_inner, j, i)
                for (pa, pb) in uncovered:
                    segments.append(
                        BoundarySegment(pa, pb, TYPE2, cell=i, other=j)
                    )
    return segments


def _uncovered_portions(
    bisector: Line,
    edge: Tuple[Vec, Vec],
    neighbor_inner: ConvexPolygon,
    neighbor_site: int,
    my_site: int,
) -> List[Tuple[Vec, Vec]]:
    """Portions of ``edge`` (on ``bisector``) not covered by the neighbour's
    inner part's twin edges."""
    a, b = edge
    ta = param_on_line(bisector, a)
    tb = param_on_line(bisector, b)
    base = Interval(ta, tb)
    holes: List[Interval] = []
    if not neighbor_inner.is_empty:
        for (c, d, label) in neighbor_inner.edges():
            if label == my_site:
                holes.append(
                    Interval(param_on_line(bisector, c), param_on_line(bisector, d))
                )
    remaining = subtract_intervals(base, holes)
    return [
        (_point_at_param(bisector, iv.lo), _point_at_param(bisector, iv.hi))
        for iv in remaining
    ]


def _bisector_line(a: Vec, b: Vec) -> Line:
    """The perpendicular bisector of two sites, with a *unit* normal.

    :class:`Line` parameterisation (``point_on``, ``param_on_line``)
    requires a unit normal; ``HalfPlane.bisector`` deliberately keeps the
    raw difference vector (it only needs the sign of the dot product), so
    it cannot be reused here.
    """
    n = normalize((b[0] - a[0], b[1] - a[1]))
    mid = ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
    return Line(n, dot(n, mid))


def _point_at_param(line: Line, t: float) -> Vec:
    """Inverse of :func:`param_on_line` for points on ``line``."""
    origin = line.point_on()
    t0 = param_on_line(line, origin)
    direction = line.direction()
    return (
        origin[0] + (t - t0) * direction[0],
        origin[1] + (t - t0) * direction[1],
    )
