"""Sink-side contour-region reconstruction for one isolevel (Section 3.4).

Given the isoline reports of one isolevel, the sink:

1. builds the bounded Voronoi diagram of the isopositions (Fig. 8c);
2. cuts each cell with the *type-1 boundary*: the line through the
   isoposition perpendicular to its gradient direction.  The part of the
   cell in the gradient (descent) direction is the *outer* part, the
   opposite part -- toward higher values -- is the *inner* part (Fig. 8d);
3. merges the inner parts of all cells and complements the boundary with
   *type-2 boundaries* along cell borders where an inner part meets a
   neighbour's outer part;
4. regulates pinnacles and concaves with Rules 1 and 2 (Fig. 8e; see
   :mod:`repro.core.regulation`).

Membership in the merged (pre-regulation) region has a closed form used
by the fast raster metrics: a point belongs to the region iff, for its
*nearest* isoposition ``p`` with direction ``d``, ``(x - p) . d <= 0``.
That is exactly "x falls in the inner part of the Voronoi cell that
contains it"; a property test pins the equivalence to the polygon
pipeline.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import profiling
from repro.core.reports import IsolineReport
from repro.geometry import (
    BORDER_LABEL,
    BoundingBox,
    ConvexPolygon,
    HalfPlane,
    Interval,
    Line,
    Vec,
    bounded_voronoi,
    dist_sq,
    dot,
    normalize,
    subtract_intervals,
)
from repro.geometry.lines import param_on_line
from repro.geometry.polyline import (
    BORDER,
    TYPE1,
    TYPE2,
    BoundarySegment,
    loop_points,
    stitch_segments_into_loops,
)
from repro.geometry.voronoi import VoronoiCell

#: Edge label for the type-1 cut chord inside a Voronoi cell.  Distinct
#: from BORDER_LABEL (-1) and from all site indices (>= 0).
CUT_LABEL = -2

#: Coincident isopositions closer than this are deduplicated before the
#: Voronoi construction (their bisector would be undefined).
DEDUPE_TOL = 1e-6

#: Scratch budget for the blocked raster-membership kernel: the distance
#: matrix of one block holds at most this many float64 values (~8 MB).
_MEMBERSHIP_BLOCK_FLOATS = 1 << 20


@dataclass
class LevelRegion:
    """The reconstructed contour region at (or above) one isolevel.

    Attributes:
        isolevel: the region's isolevel.
        bounds: the field extent.
        reports: the (deduplicated) reports the reconstruction used.
        cells: the Voronoi cells, parallel to ``reports``.
        inner_polys: each cell's inner part, parallel to ``cells``
            (possibly empty polygons).
        loops: merged boundary loops before regulation.
        regulated_loops: boundary loops after Rule-1/Rule-2 regulation.
        regulation_stats: counts of applied rules, for diagnostics.
    """

    isolevel: float
    bounds: BoundingBox
    reports: List[IsolineReport]
    cells: List[VoronoiCell]
    inner_polys: List[ConvexPolygon]
    loops: List[List[BoundarySegment]] = field(default_factory=list)
    regulated_loops: List[List[BoundarySegment]] = field(default_factory=list)
    regulation_stats: Dict[str, int] = field(default_factory=dict)

    # Vectorised report arrays, built lazily for the raster classifier.
    _positions_arr: Optional[np.ndarray] = None
    _directions_arr: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def contains(self, p: Vec) -> bool:
        """Implicit membership: inner side of the nearest report's cut.

        Equivalent to membership in the merged inner parts (the Voronoi
        cell containing ``p`` belongs to the nearest isoposition, and the
        inner half of that cell is where ``(p - site) . d <= 0``).
        """
        if not self.reports:
            return False
        best = min(
            self.reports, key=lambda r: dist_sq(p, r.position)
        )
        dx = p[0] - best.position[0]
        dy = p[1] - best.position[1]
        return dx * best.direction[0] + dy * best.direction[1] <= 0.0

    def contains_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` for an ``(n, 2)`` array of points.

        Points are processed in blocks so the ``(block, m)`` distance
        matrix stays memory-bounded regardless of the raster size; the
        per-point ``argmin`` (first index on ties, like the scalar
        ``min``) is unaffected by the blocking.
        """
        if not self.reports:
            return np.zeros(len(points), dtype=bool)
        if self._positions_arr is None:
            self._positions_arr = np.array(
                [r.position for r in self.reports], dtype=float
            )
            self._directions_arr = np.array(
                [r.direction for r in self.reports], dtype=float
            )
        pts = np.asarray(points, dtype=float)
        n = len(pts)
        m = len(self._positions_arr)
        out = np.empty(n, dtype=bool)
        # ~8 MB of float64 scratch per block at the default budget.
        block = max(1, _MEMBERSHIP_BLOCK_FLOATS // max(1, m))
        px = self._positions_arr[:, 0]
        py = self._positions_arr[:, 1]
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            chunk = pts[lo:hi]
            # (block, m) squared distances; nearest report per point.
            d2 = (chunk[:, 0:1] - px[None, :]) ** 2
            d2 += (chunk[:, 1:2] - py[None, :]) ** 2
            nearest = d2.argmin(axis=1)
            rel = chunk - self._positions_arr[nearest]
            dirs = self._directions_arr[nearest]
            out[lo:hi] = (rel * dirs).sum(axis=1) <= 0.0
        return out

    # ------------------------------------------------------------------
    # Geometry accessors
    # ------------------------------------------------------------------

    def area(self) -> float:
        """Area of the merged inner parts (pre-regulation)."""
        return sum(poly.area() for poly in self.inner_polys)

    def boundary_polylines(self, regulated: bool = True) -> List[List[Vec]]:
        """Closed boundary rings as vertex lists."""
        loops = self.regulated_loops if regulated else self.loops
        return [loop_points(lp) for lp in loops if len(lp) >= 2]

    def isoline_polylines(self, regulated: bool = True) -> List[List[Vec]]:
        """The estimated *isolines*: boundary runs excluding field-border
        segments.

        The true isoline never runs along the field border; dropping
        BORDER segments makes the result comparable with marching-squares
        ground truth in the Hausdorff metric (Fig. 12).
        """
        loops = self.regulated_loops if regulated else self.loops
        polylines: List[List[Vec]] = []
        for lp in loops:
            run: List[Vec] = []
            for seg in lp:
                if seg.kind == BORDER:
                    if len(run) >= 2:
                        polylines.append(run)
                    run = []
                else:
                    if not run:
                        run = [seg.a, seg.b]
                    else:
                        run.append(seg.b)
            if len(run) >= 2:
                polylines.append(run)
        return polylines


def build_level_region(
    isolevel: float,
    reports: Sequence[IsolineReport],
    bounds: BoundingBox,
    regulate: bool = True,
) -> LevelRegion:
    """Run the full single-level reconstruction (steps 1-4 above).

    Raises:
        ValueError: when no reports are given (an empty level is handled
            one layer up, by :class:`repro.core.contour_map.ContourMap`).
    """
    with profiling.stage("reconstruction.dedupe"):
        deduped = _dedupe_reports(reports)
    if not deduped:
        raise ValueError("cannot reconstruct a level without reports")

    sites = [r.position for r in deduped]
    with profiling.stage("reconstruction.voronoi"):
        cells = bounded_voronoi(sites, bounds)

    with profiling.stage("reconstruction.inner_cut"):
        inner_polys: List[ConvexPolygon] = []
        for cell, report in zip(cells, deduped):
            inner_polys.append(_inner_part(cell, report))

    with profiling.stage("reconstruction.boundary"):
        segments = _boundary_segments(cells, inner_polys, sites)
        loops = stitch_segments_into_loops(segments)

    region = LevelRegion(
        isolevel=isolevel,
        bounds=bounds,
        reports=deduped,
        cells=cells,
        inner_polys=inner_polys,
        loops=loops,
    )
    if regulate:
        from repro.core.regulation import regulate_loops

        with profiling.stage("reconstruction.regulate"):
            region.regulated_loops, region.regulation_stats = regulate_loops(
                loops, deduped
            )
    else:
        region.regulated_loops = loops
        region.regulation_stats = {"rule1": 0, "rule2": 0}
    return region


def build_level_region_reference(
    isolevel: float,
    reports: Sequence[IsolineReport],
    bounds: BoundingBox,
    regulate: bool = True,
) -> LevelRegion:
    """Reconstruction composed entirely of the retained scalar reference
    kernels (pairwise dedupe, per-site-sorted Voronoi, rescanning boundary
    extraction).  Exists so the differential tests can pin the fast
    pipeline against it end to end; produces bit-identical regions.
    """
    from repro.geometry.voronoi import bounded_voronoi_reference

    deduped = _dedupe_reports_reference(reports)
    if not deduped:
        raise ValueError("cannot reconstruct a level without reports")

    sites = [r.position for r in deduped]
    cells = bounded_voronoi_reference(sites, bounds)

    inner_polys = [_inner_part(c, r) for c, r in zip(cells, deduped)]
    segments = _boundary_segments_reference(cells, inner_polys, sites)
    loops = stitch_segments_into_loops(segments)

    region = LevelRegion(
        isolevel=isolevel,
        bounds=bounds,
        reports=deduped,
        cells=cells,
        inner_polys=inner_polys,
        loops=loops,
    )
    if regulate:
        from repro.core.regulation import regulate_loops

        region.regulated_loops, region.regulation_stats = regulate_loops(
            loops, deduped
        )
    else:
        region.regulated_loops = loops
        region.regulation_stats = {"rule1": 0, "rule2": 0}
    return region


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _dedupe_reports(reports: Sequence[IsolineReport]) -> List[IsolineReport]:
    """Drop reports whose position coincides with an earlier one.

    Spatial-hash pass: kept positions are bucketed on a DEDUPE_TOL-sized
    grid, so each report only compares against kept reports in its 3x3
    bucket neighbourhood (any position within DEDUPE_TOL is at most one
    bucket away).  First-report-wins order is identical to the pairwise
    :func:`_dedupe_reports_reference`, which the tests pin; expected cost
    is O(k) instead of O(k^2).
    """
    kept: List[IsolineReport] = []
    buckets: Dict[Tuple[int, int], List[Vec]] = {}
    inv = 1.0 / DEDUPE_TOL
    tol_sq = DEDUPE_TOL**2
    for r in reports:
        x, y = r.position
        bx = math.floor(x * inv)
        by = math.floor(y * inv)
        coincides = False
        for kx in (bx - 1, bx, bx + 1):
            for ky in (by - 1, by, by + 1):
                for pos in buckets.get((kx, ky), ()):
                    if dist_sq(r.position, pos) <= tol_sq:
                        coincides = True
                        break
                if coincides:
                    break
            if coincides:
                break
        if not coincides:
            kept.append(r)
            buckets.setdefault((bx, by), []).append(r.position)
    return kept


def _dedupe_reports_reference(
    reports: Sequence[IsolineReport],
) -> List[IsolineReport]:
    """All-pairs dedupe (retained reference for :func:`_dedupe_reports`)."""
    kept: List[IsolineReport] = []
    for r in reports:
        if all(dist_sq(r.position, k.position) > DEDUPE_TOL**2 for k in kept):
            kept.append(r)
    return kept


def _inner_part(cell: VoronoiCell, report: IsolineReport) -> ConvexPolygon:
    """The inner half of a cell: the side *against* the descent direction.

    The separating line passes through the isoposition perpendicular to
    the gradient direction ``d``; "the part in the gradient direction is
    the outer part" (Section 3.4), so the inner part satisfies
    ``(x - p) . d <= 0``.
    """
    d = normalize(report.direction)
    hp = HalfPlane(d, dot(d, report.position))
    return cell.polygon.clip(hp, CUT_LABEL)


def _boundary_segments(
    cells: List[VoronoiCell],
    inner_polys: List[ConvexPolygon],
    sites: List[Vec],
) -> List[BoundarySegment]:
    """Extract the merged region's boundary from the per-cell inner parts.

    - Cut-chord edges are type-1 boundary, always.
    - Field-border edges of inner parts are boundary (of kind BORDER).
    - A shared Voronoi edge contributes the portions covered by exactly
      one of the two adjacent inner parts (symmetric difference), found by
      1-D interval subtraction along the bisector line; these are type-2.

    Each inner part's edges are indexed by label once (lazily), so every
    type-2 edge finds its twin edges in one dict lookup instead of
    rescanning the neighbour's whole edge list -- O(edges) overall where
    the retained :func:`_boundary_segments_reference` is O(edges * degree).
    Hole order within a label follows ``edges()`` order either way, so the
    interval subtraction (and hence the output) is bit-identical.
    """
    by_site = {c.site_index: k for k, c in enumerate(cells)}
    edge_index: List[Optional[Dict[int, List[Tuple[Vec, Vec]]]]] = [None] * len(
        inner_polys
    )

    def twins(poly_k: int, label: int) -> List[Tuple[Vec, Vec]]:
        index = edge_index[poly_k]
        if index is None:
            index = {}
            for c, d, lab in inner_polys[poly_k].edges():
                index.setdefault(lab, []).append((c, d))
            edge_index[poly_k] = index
        return index.get(label, [])

    segments: List[BoundarySegment] = []
    for k, (cell, inner) in enumerate(zip(cells, inner_polys)):
        if inner.is_empty:
            continue
        i = cell.site_index
        for a, b, label in inner.edges():
            if label == CUT_LABEL:
                segments.append(BoundarySegment(a, b, TYPE1, cell=i))
            elif label == BORDER_LABEL:
                segments.append(BoundarySegment(a, b, BORDER, cell=i))
            else:
                j = label
                bisector = _bisector_line(sites[i], sites[j])
                ta = param_on_line(bisector, a)
                tb = param_on_line(bisector, b)
                holes = [
                    Interval(param_on_line(bisector, c), param_on_line(bisector, d))
                    for (c, d) in twins(by_site[j], i)
                ]
                remaining = subtract_intervals(Interval(ta, tb), holes)
                for iv in remaining:
                    segments.append(
                        BoundarySegment(
                            _point_at_param(bisector, iv.lo),
                            _point_at_param(bisector, iv.hi),
                            TYPE2,
                            cell=i,
                            other=j,
                        )
                    )
    return segments


def _boundary_segments_reference(
    cells: List[VoronoiCell],
    inner_polys: List[ConvexPolygon],
    sites: List[Vec],
) -> List[BoundarySegment]:
    """Rescanning extraction (retained reference for
    :func:`_boundary_segments`)."""
    by_site = {c.site_index: k for k, c in enumerate(cells)}
    segments: List[BoundarySegment] = []

    for k, (cell, inner) in enumerate(zip(cells, inner_polys)):
        if inner.is_empty:
            continue
        i = cell.site_index
        for a, b, label in inner.edges():
            if label == CUT_LABEL:
                segments.append(BoundarySegment(a, b, TYPE1, cell=i))
            elif label == BORDER_LABEL:
                segments.append(BoundarySegment(a, b, BORDER, cell=i))
            else:
                j = label
                neighbor_inner = inner_polys[by_site[j]]
                bisector = _bisector_line(sites[i], sites[j])
                uncovered = _uncovered_portions(bisector, (a, b), neighbor_inner, j, i)
                for (pa, pb) in uncovered:
                    segments.append(
                        BoundarySegment(pa, pb, TYPE2, cell=i, other=j)
                    )
    return segments


def _uncovered_portions(
    bisector: Line,
    edge: Tuple[Vec, Vec],
    neighbor_inner: ConvexPolygon,
    neighbor_site: int,
    my_site: int,
) -> List[Tuple[Vec, Vec]]:
    """Portions of ``edge`` (on ``bisector``) not covered by the neighbour's
    inner part's twin edges."""
    a, b = edge
    ta = param_on_line(bisector, a)
    tb = param_on_line(bisector, b)
    base = Interval(ta, tb)
    holes: List[Interval] = []
    if not neighbor_inner.is_empty:
        for (c, d, label) in neighbor_inner.edges():
            if label == my_site:
                holes.append(
                    Interval(param_on_line(bisector, c), param_on_line(bisector, d))
                )
    remaining = subtract_intervals(base, holes)
    return [
        (_point_at_param(bisector, iv.lo), _point_at_param(bisector, iv.hi))
        for iv in remaining
    ]


def _bisector_line(a: Vec, b: Vec) -> Line:
    """The perpendicular bisector of two sites, with a *unit* normal.

    :class:`Line` parameterisation (``point_on``, ``param_on_line``)
    requires a unit normal; ``HalfPlane.bisector`` deliberately keeps the
    raw difference vector (it only needs the sign of the dot product), so
    it cannot be reused here.
    """
    n = normalize((b[0] - a[0], b[1] - a[1]))
    mid = ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
    return Line(n, dot(n, mid))


def _point_at_param(line: Line, t: float) -> Vec:
    """Inverse of :func:`param_on_line` for points on ``line``."""
    origin = line.point_on()
    t0 = param_on_line(line, origin)
    direction = line.direction()
    return (
        origin[0] + (t - t0) * direction[0],
        origin[1] + (t - t0) * direction[1],
    )
