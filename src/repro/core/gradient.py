"""Local gradient estimation by least-squares plane regression (Section 3.3).

An isoline node collects ``(position, value)`` tuples from its k-hop
neighbourhood and fits the linear model ``v = c0 + c1*x + c2*y`` by
solving the normal equations ``(V^T V) w = V^T v`` (Eq. 2 of the paper).
The reported gradient direction is ``d = -(c1, c2)`` normalised (Eq. 3).

The solver is written out long-hand (3x3 Gaussian elimination with partial
pivoting) both to stay faithful to what an 8-bit mote would execute and to
count the arithmetic operations the computational-overhead analysis
charges: the cost is ``O(deg)`` for accumulating the sums plus a constant
for the solve, i.e. constant per node for bounded density -- the claim
behind Fig. 15b.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import EPS, Vec

#: Arithmetic operations charged per neighbour sample when accumulating
#: the normal-equation sums: x*x, x*y, y*y, x*v, y*v products plus five
#: additions.
OPS_PER_SAMPLE = 10

#: Arithmetic operations charged for the fixed-size 3x3 solve.
OPS_SOLVE = 40


@dataclass(frozen=True)
class GradientEstimate:
    """Result of a local plane regression.

    Attributes:
        direction: unit steepest-descent direction ``d = -grad L``.
        coefficients: the fitted ``(c0, c1, c2)``.
        ops: arithmetic operations spent (charged to the node's CPU).
        sample_count: number of points used (centre + neighbours).
    """

    direction: Vec
    coefficients: Tuple[float, float, float]
    ops: int
    sample_count: int


def estimate_gradient(
    center: Vec,
    center_value: float,
    neighbors: Sequence[Tuple[Vec, float]],
) -> Optional[GradientEstimate]:
    """Fit the local plane and return the descent direction.

    Args:
        center: the isoline node's own position ``p0``.
        center_value: its sensed value ``v0``.
        neighbors: ``(position, value)`` tuples from the neighbourhood.

    Returns:
        The estimate, or ``None`` when the regression is degenerate: fewer
        than two neighbours, (near-)collinear sample positions, or a
        (near-)flat fitted plane, none of which define a direction.  The
        protocol layer falls back to a two-point estimate in that case.
    """
    pts: List[Tuple[float, float, float]] = [(center[0], center[1], center_value)]
    pts.extend((p[0], p[1], v) for p, v in neighbors)
    m = len(pts)
    if m < 3:
        return None

    # Accumulate the normal equations (Eq. 2): A = V^T V, b = V^T v.
    sx = sy = sv = sxx = sxy = syy = sxv = syv = 0.0
    for (x, y, v) in pts:
        sx += x
        sy += y
        sv += v
        sxx += x * x
        sxy += x * y
        syy += y * y
        sxv += x * v
        syv += y * v
    a = [
        [float(m), sx, sy],
        [sx, sxx, sxy],
        [sy, sxy, syy],
    ]
    b = [sv, sxv, syv]
    ops = OPS_PER_SAMPLE * m + OPS_SOLVE

    w = _solve3(a, b)
    if w is None:
        return None
    c0, c1, c2 = w
    # d = -grad L = -(c1, c2) (Eq. 3), reported as a unit direction.
    g = math.hypot(c1, c2)
    if g < 1e-9:
        return None
    direction = (-c1 / g, -c2 / g)
    return GradientEstimate(
        direction=direction, coefficients=(c0, c1, c2), ops=ops, sample_count=m
    )


#: One regression task: (centre position, centre value, neighbour samples).
GradientTask = Tuple[Vec, float, Sequence[Tuple[Vec, float]]]


def estimate_gradients_batch(
    tasks: Sequence[GradientTask],
) -> List[Optional[GradientEstimate]]:
    """Fit every isoline node's plane in one batched solve.

    Returns exactly ``[estimate_gradient(*t) for t in tasks]`` -- the same
    floats bit-for-bit and the same ``ops`` charges -- but runs the
    normal-equation accumulation and the 3x3 eliminations as NumPy batch
    operations over all nodes at once.

    Bit-compatibility is engineered, not incidental:

    - The eight normal-equation sums accumulate column-by-column with a
      validity mask (``np.add(..., where=mask)``), reproducing the
      sequential ``+=`` order of the scalar loop; a tree reduction such as
      ``np.sum`` would round differently.
    - The elimination mirrors :func:`_solve3` statically: ``np.argmax``
      picks the same pivot Python's ``max`` does (first index on ties),
      rows swap by gather, and every update performs the identical
      ``m[r][c] -= f * m[col][c]`` expression elementwise.
    - Back-substitution subtracts terms in the same ascending-column
      order, and the final normalisation calls ``math.hypot`` per row
      because ``np.hypot`` is not guaranteed to round identically.

    Degenerate rows (fewer than three samples, singular system, flat
    plane) come back as ``None``, exactly like the scalar path; their
    intermediate divisions run on masked-out dummy pivots under
    ``np.errstate``.
    """
    n_tasks = len(tasks)
    if n_tasks == 0:
        return []
    counts = np.fromiter(
        (1 + len(t[2]) for t in tasks), dtype=np.int64, count=n_tasks
    )
    width = int(counts.max())
    # Flatten every (x, y, v) sample once, then scatter into the padded
    # per-row layout in a single fancy assignment (a per-row fill loop is
    # the dominant cost otherwise).
    flat: List[float] = []
    extend = flat.extend
    for center, center_value, neighbors in tasks:
        extend((center[0], center[1], center_value))
        for p, v in neighbors:
            extend((p[0], p[1], v))
    samples = np.array(flat).reshape(-1, 3)
    total = len(samples)
    starts = np.cumsum(counts) - counts
    row_idx = np.repeat(np.arange(n_tasks), counts)
    col_idx = np.arange(total) - np.repeat(starts, counts)
    xs = np.zeros((n_tasks, width))
    ys = np.zeros((n_tasks, width))
    vs = np.zeros((n_tasks, width))
    xs[row_idx, col_idx] = samples[:, 0]
    ys[row_idx, col_idx] = samples[:, 1]
    vs[row_idx, col_idx] = samples[:, 2]
    mask = np.arange(width)[None, :] < counts[:, None]

    # Normal equations, accumulated in scalar-loop order (see docstring).
    sums = np.zeros((8, n_tasks))
    sx, sy, sv, sxx, sxy, syy, sxv, syv = sums
    for k in range(width):
        mk = mask[:, k]
        xk = xs[:, k]
        yk = ys[:, k]
        vk = vs[:, k]
        np.add(sx, xk, out=sx, where=mk)
        np.add(sy, yk, out=sy, where=mk)
        np.add(sv, vk, out=sv, where=mk)
        np.add(sxx, xk * xk, out=sxx, where=mk)
        np.add(sxy, xk * yk, out=sxy, where=mk)
        np.add(syy, yk * yk, out=syy, where=mk)
        np.add(sxv, xk * vk, out=sxv, where=mk)
        np.add(syv, yk * vk, out=syv, where=mk)

    # Augmented systems [A | b], one 3x4 matrix per task.
    aug = np.empty((n_tasks, 3, 4))
    aug[:, 0, 0] = counts
    aug[:, 0, 1] = sx
    aug[:, 0, 2] = sy
    aug[:, 0, 3] = sv
    aug[:, 1, 0] = sx
    aug[:, 1, 1] = sxx
    aug[:, 1, 2] = sxy
    aug[:, 1, 3] = sxv
    aug[:, 2, 0] = sy
    aug[:, 2, 1] = sxy
    aug[:, 2, 2] = syy
    aug[:, 2, 3] = syv

    tol = 1e-10
    scale = np.abs(aug[:, :, :3]).max(axis=(1, 2))
    singular = scale == 0.0
    rows = np.arange(n_tasks)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for col in range(3):
            pivot_rel = np.argmax(np.abs(aug[:, col:, col]), axis=1)
            pivot_row = col + pivot_rel
            swapped = aug[rows, pivot_row, :].copy()
            aug[rows, pivot_row, :] = aug[:, col, :]
            aug[:, col, :] = swapped
            pivot = aug[:, col, col]
            singular |= np.abs(pivot) < tol * scale
            denom = np.where(pivot == 0.0, 1.0, pivot)
            for r in range(col + 1, 3):
                f = aug[:, r, col] / denom
                aug[:, r, col:] = aug[:, r, col:] - f[:, None] * aug[:, col, col:]
        d22 = np.where(aug[:, 2, 2] == 0.0, 1.0, aug[:, 2, 2])
        d11 = np.where(aug[:, 1, 1] == 0.0, 1.0, aug[:, 1, 1])
        d00 = np.where(aug[:, 0, 0] == 0.0, 1.0, aug[:, 0, 0])
        c2 = aug[:, 2, 3] / d22
        c1 = (aug[:, 1, 3] - aug[:, 1, 2] * c2) / d11
        c0 = (aug[:, 0, 3] - aug[:, 0, 1] * c1 - aug[:, 0, 2] * c2) / d00

    out: List[Optional[GradientEstimate]] = []
    append = out.append
    counts_list = counts.tolist()
    singular_list = singular.tolist()
    c0l, c1l, c2l = c0.tolist(), c1.tolist(), c2.tolist()
    hypot = math.hypot
    new = object.__new__
    for r in range(n_tasks):
        m = counts_list[r]
        if m < 3 or singular_list[r]:
            append(None)
            continue
        w1, w2 = c1l[r], c2l[r]
        g = hypot(w1, w2)
        if g < 1e-9:
            append(None)
            continue
        # Frozen-dataclass __init__ routes every field through
        # object.__setattr__; filling __dict__ directly makes the
        # construction loop a minor cost instead of the dominant one.
        est = new(GradientEstimate)
        est.__dict__.update(
            direction=(-w1 / g, -w2 / g),
            coefficients=(c0l[r], w1, w2),
            ops=OPS_PER_SAMPLE * m + OPS_SOLVE,
            sample_count=m,
        )
        append(est)
    return out


def fallback_direction(
    center: Vec, center_value: float, other: Vec, other_value: float
) -> Optional[Vec]:
    """Two-point descent direction for degenerate neighbourhoods.

    With a single usable neighbour the best available estimate is the unit
    vector along the pair, oriented from the higher to the lower value.
    Returns ``None`` when the positions coincide or the values tie.
    """
    dx = other[0] - center[0]
    dy = other[1] - center[1]
    n = math.hypot(dx, dy)
    if n < EPS or other_value == center_value:
        return None
    if other_value < center_value:
        return (dx / n, dy / n)
    return (-dx / n, -dy / n)


def _solve3(
    a: List[List[float]], b: List[float], tol: float = 1e-10
) -> Optional[Tuple[float, float, float]]:
    """Solve a 3x3 linear system by Gaussian elimination, partial pivoting.

    Returns ``None`` on a (numerically) singular matrix -- collinear sample
    positions make ``V^T V`` rank deficient.  Scale-invariant singularity
    test: pivots are compared against the largest entry of the matrix.
    """
    scale = max(abs(a[i][j]) for i in range(3) for j in range(3))
    if scale == 0.0:
        return None
    m = [row[:] + [rhs] for row, rhs in zip(a, b)]
    for col in range(3):
        pivot_row = max(range(col, 3), key=lambda r: abs(m[r][col]))
        if abs(m[pivot_row][col]) < tol * scale:
            return None
        if pivot_row != col:
            m[col], m[pivot_row] = m[pivot_row], m[col]
        for r in range(col + 1, 3):
            f = m[r][col] / m[col][col]
            for c in range(col, 4):
                m[r][c] -= f * m[col][c]
    x = [0.0, 0.0, 0.0]
    for row in (2, 1, 0):
        acc = m[row][3]
        for c in range(row + 1, 3):
            acc -= m[row][c] * x[c]
        x[row] = acc / m[row][row]
    return (x[0], x[1], x[2])
