"""Local gradient estimation by least-squares plane regression (Section 3.3).

An isoline node collects ``(position, value)`` tuples from its k-hop
neighbourhood and fits the linear model ``v = c0 + c1*x + c2*y`` by
solving the normal equations ``(V^T V) w = V^T v`` (Eq. 2 of the paper).
The reported gradient direction is ``d = -(c1, c2)`` normalised (Eq. 3).

The solver is written out long-hand (3x3 Gaussian elimination with partial
pivoting) both to stay faithful to what an 8-bit mote would execute and to
count the arithmetic operations the computational-overhead analysis
charges: the cost is ``O(deg)`` for accumulating the sums plus a constant
for the solve, i.e. constant per node for bounded density -- the claim
behind Fig. 15b.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry import EPS, Vec

#: Arithmetic operations charged per neighbour sample when accumulating
#: the normal-equation sums: x*x, x*y, y*y, x*v, y*v products plus five
#: additions.
OPS_PER_SAMPLE = 10

#: Arithmetic operations charged for the fixed-size 3x3 solve.
OPS_SOLVE = 40


@dataclass(frozen=True)
class GradientEstimate:
    """Result of a local plane regression.

    Attributes:
        direction: unit steepest-descent direction ``d = -grad L``.
        coefficients: the fitted ``(c0, c1, c2)``.
        ops: arithmetic operations spent (charged to the node's CPU).
        sample_count: number of points used (centre + neighbours).
    """

    direction: Vec
    coefficients: Tuple[float, float, float]
    ops: int
    sample_count: int


def estimate_gradient(
    center: Vec,
    center_value: float,
    neighbors: Sequence[Tuple[Vec, float]],
) -> Optional[GradientEstimate]:
    """Fit the local plane and return the descent direction.

    Args:
        center: the isoline node's own position ``p0``.
        center_value: its sensed value ``v0``.
        neighbors: ``(position, value)`` tuples from the neighbourhood.

    Returns:
        The estimate, or ``None`` when the regression is degenerate: fewer
        than two neighbours, (near-)collinear sample positions, or a
        (near-)flat fitted plane, none of which define a direction.  The
        protocol layer falls back to a two-point estimate in that case.
    """
    pts: List[Tuple[float, float, float]] = [(center[0], center[1], center_value)]
    pts.extend((p[0], p[1], v) for p, v in neighbors)
    m = len(pts)
    if m < 3:
        return None

    # Accumulate the normal equations (Eq. 2): A = V^T V, b = V^T v.
    sx = sy = sv = sxx = sxy = syy = sxv = syv = 0.0
    for (x, y, v) in pts:
        sx += x
        sy += y
        sv += v
        sxx += x * x
        sxy += x * y
        syy += y * y
        sxv += x * v
        syv += y * v
    a = [
        [float(m), sx, sy],
        [sx, sxx, sxy],
        [sy, sxy, syy],
    ]
    b = [sv, sxv, syv]
    ops = OPS_PER_SAMPLE * m + OPS_SOLVE

    w = _solve3(a, b)
    if w is None:
        return None
    c0, c1, c2 = w
    # d = -grad L = -(c1, c2) (Eq. 3), reported as a unit direction.
    g = math.hypot(c1, c2)
    if g < 1e-9:
        return None
    direction = (-c1 / g, -c2 / g)
    return GradientEstimate(
        direction=direction, coefficients=(c0, c1, c2), ops=ops, sample_count=m
    )


def fallback_direction(
    center: Vec, center_value: float, other: Vec, other_value: float
) -> Optional[Vec]:
    """Two-point descent direction for degenerate neighbourhoods.

    With a single usable neighbour the best available estimate is the unit
    vector along the pair, oriented from the higher to the lower value.
    Returns ``None`` when the positions coincide or the values tie.
    """
    dx = other[0] - center[0]
    dy = other[1] - center[1]
    n = math.hypot(dx, dy)
    if n < EPS or other_value == center_value:
        return None
    if other_value < center_value:
        return (dx / n, dy / n)
    return (-dx / n, -dy / n)


def _solve3(
    a: List[List[float]], b: List[float], tol: float = 1e-10
) -> Optional[Tuple[float, float, float]]:
    """Solve a 3x3 linear system by Gaussian elimination, partial pivoting.

    Returns ``None`` on a (numerically) singular matrix -- collinear sample
    positions make ``V^T V`` rank deficient.  Scale-invariant singularity
    test: pivots are compared against the largest entry of the matrix.
    """
    scale = max(abs(a[i][j]) for i in range(3) for j in range(3))
    if scale == 0.0:
        return None
    m = [row[:] + [rhs] for row, rhs in zip(a, b)]
    for col in range(3):
        pivot_row = max(range(col, 3), key=lambda r: abs(m[r][col]))
        if abs(m[pivot_row][col]) < tol * scale:
            return None
        if pivot_row != col:
            m[col], m[pivot_row] = m[pivot_row], m[col]
        for r in range(col + 1, 3):
            f = m[r][col] / m[col][col]
            for c in range(col, 4):
                m[r][c] -= f * m[col][c]
    x = [0.0, 0.0, 0.0]
    for row in (2, 1, 0):
        acc = m[row][3]
        for c in range(row + 1, 3):
            acc -= m[row][c] * x[c]
        x[row] = acc / m[row][row]
    return (x[0], x[1], x[2])
