"""Wire-format sizes shared by all protocols.

Section 5.1 of the paper: "Each parameter in a report uses two bytes, such
as the sensory value, position, gradient, etc."  Positions take two
parameters (x and y); the gradient direction is a single angle parameter.
"""

#: Bytes per scalar report parameter.
BYTES_PER_PARAM = 2

#: A contour query carries (value_lo, value_hi, granularity, epsilon).
QUERY_BYTES = 4 * BYTES_PER_PARAM

#: An Iso-Map isoline report <v, p, d> = (isolevel, x, y, gradient angle).
ISOLINE_REPORT_BYTES = 4 * BYTES_PER_PARAM

#: A plain sensor reading report (value, x, y) -- used by TinyDB-style
#: full collection on random deployments.
VALUE_REPORT_BYTES = 3 * BYTES_PER_PARAM

#: A grid-cell reading (value, cell id) -- TinyDB on its native grid
#: deployment addresses cells, not coordinates.
GRID_REPORT_BYTES = 2 * BYTES_PER_PARAM

#: The tiny local probe an isoline candidate broadcasts to ask neighbours
#: for their (value, position) tuples.
LOCAL_QUERY_BYTES = 1 * BYTES_PER_PARAM

#: A neighbour's (value, x, y) answer to a local probe.
LOCAL_REPLY_BYTES = 3 * BYTES_PER_PARAM

# ----------------------------------------------------------------------
# Fault-tolerant transport framing (repro.network.transport)
# ----------------------------------------------------------------------
#
# Frames carry a CRC-16 trailer and a per-source sequence number.  Both
# ride inside the per-hop framing the paper's 2-byte-per-parameter
# budget already implies (preambles, addresses and checksums are part of
# any real MAC frame), so they add no *extra* charged bytes: the
# transport charges only work that would not happen on a perfect link --
# retransmitted frames, duplicate frames, backoff listen windows, and
# tree-repair messages.

#: CRC-16/CCITT-FALSE trailer protecting an encoded report frame.
FRAME_CRC_BYTES = 2

#: An orphaned node's local probe asking alive neighbours for their
#: tree level (one parameter).
REPAIR_PROBE_BYTES = 1 * BYTES_PER_PARAM

#: A neighbour's (level) answer to a repair probe.
REPAIR_REPLY_BYTES = 1 * BYTES_PER_PARAM

#: The join message an orphan unicasts to its adopted parent.
REPAIR_JOIN_BYTES = 1 * BYTES_PER_PARAM


def crc16(payload: bytes, init: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE over ``payload`` (poly 0x1021, MSB-first).

    Pure-python bitwise implementation -- frames are 8 bytes, so table
    lookups would buy nothing.
    """
    crc = init
    for byte in payload:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def frame_with_crc(payload: bytes) -> bytes:
    """Append the big-endian CRC-16 trailer to an encoded frame."""
    c = crc16(payload)
    return payload + bytes((c >> 8, c & 0xFF))


def check_crc(frame: bytes) -> bool:
    """True when ``frame`` (payload + 2-byte trailer) passes the CRC."""
    if len(frame) < FRAME_CRC_BYTES:
        return False
    payload, trailer = frame[:-FRAME_CRC_BYTES], frame[-FRAME_CRC_BYTES:]
    return crc16(payload) == (trailer[0] << 8 | trailer[1])
