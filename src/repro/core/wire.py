"""Wire-format sizes shared by all protocols.

Section 5.1 of the paper: "Each parameter in a report uses two bytes, such
as the sensory value, position, gradient, etc."  Positions take two
parameters (x and y); the gradient direction is a single angle parameter.
"""

#: Bytes per scalar report parameter.
BYTES_PER_PARAM = 2

#: A contour query carries (value_lo, value_hi, granularity, epsilon).
QUERY_BYTES = 4 * BYTES_PER_PARAM

#: An Iso-Map isoline report <v, p, d> = (isolevel, x, y, gradient angle).
ISOLINE_REPORT_BYTES = 4 * BYTES_PER_PARAM

#: A plain sensor reading report (value, x, y) -- used by TinyDB-style
#: full collection on random deployments.
VALUE_REPORT_BYTES = 3 * BYTES_PER_PARAM

#: A grid-cell reading (value, cell id) -- TinyDB on its native grid
#: deployment addresses cells, not coordinates.
GRID_REPORT_BYTES = 2 * BYTES_PER_PARAM

#: The tiny local probe an isoline candidate broadcasts to ask neighbours
#: for their (value, position) tuples.
LOCAL_QUERY_BYTES = 1 * BYTES_PER_PARAM

#: A neighbour's (value, x, y) answer to a local probe.
LOCAL_REPLY_BYTES = 3 * BYTES_PER_PARAM
