"""The end-to-end Iso-Map protocol run (Section 3).

Phases: query dissemination down the routing tree, distributed isoline-
node detection, local gradient estimation and report generation,
tree collection with in-network filtering, and sink-side reconstruction.
All traffic and computation is charged to a :class:`CostAccountant` at
the point it is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.codec import ReportCodec
from repro.core.contour_map import ContourMap, build_contour_map
from repro.core.detection import DetectionResult, detect_isoline_nodes
from repro.core.filtering import FilterConfig, InNetworkFilter
from repro.core.gradient import (
    estimate_gradient,
    estimate_gradients_batch,
    fallback_direction,
)
from repro.core.query import ContourQuery
from repro.core.reports import IsolineReport
from repro.core.wire import QUERY_BYTES
from repro.network import CostAccountant, SensorNetwork
from repro.network.faults import FaultEngine, FaultPlan
from repro.network.links import LossyLinkModel
from repro.network.tiling import TilePartition
from repro.network.transport import (
    DegradationReport,
    EpochTransport,
    OutFrame,
    TransportConfig,
)

#: Ops charged for the two-point fallback direction estimate.
OPS_FALLBACK = 6


def make_report_mangler(query: ContourQuery, bounds):
    """Receiver-side decoding of a corrupted isoline-report frame.

    Without a CRC the receiver decodes whatever bits arrived: the frame
    is re-encoded through the real :class:`ReportCodec`, the fault
    engine flips bits in it, and the decode of the damaged frame is the
    poisoned report that keeps flowing.  A mangled isolevel almost never
    lands exactly on a query level after quantisation, so the receiver
    files the report under the nearest level -- the misfiling a naive
    stack commits.
    """
    levels = query.isolevels

    def mangle(report: IsolineReport, engine: FaultEngine):
        codec = ReportCodec.for_query(query, bounds)
        damaged = engine.corrupt_payload(codec.encode(report))
        try:
            decoded = codec.decode(damaged, source=report.source)
        except ValueError:  # pragma: no cover - sizes never change
            return None
        snapped = min(levels, key=lambda lv: abs(lv - decoded.isolevel))
        return IsolineReport(
            isolevel=snapped,
            position=decoded.position,
            direction=decoded.direction,
            source=decoded.source,
        )

    return mangle


@dataclass
class IsoMapResult:
    """Everything a single Iso-Map epoch produces.

    Attributes:
        contour_map: the sink's reconstruction.
        costs: per-node traffic/computation counters for the whole run.
        detection: the detection-phase outcome (isoline nodes, candidates).
        generated_reports: reports created at isoline nodes.
        delivered_reports: reports that reached the sink after filtering.
        dropped_by_filter: reports discarded by in-network filtering.
        degradation: the collection transport's account of what was
            delivered, lost, repaired and discarded -- how trustworthy
            the map is (always present; trivially clean at zero faults).
    """

    contour_map: ContourMap
    costs: CostAccountant
    detection: DetectionResult
    generated_reports: List[IsolineReport] = field(default_factory=list)
    delivered_reports: List[IsolineReport] = field(default_factory=list)
    dropped_by_filter: int = 0
    degradation: Optional[DegradationReport] = None


class IsoMapProtocol:
    """Runs Iso-Map contour mapping over a :class:`SensorNetwork`.

    Args:
        query: the contour query the sink disseminates.
        filter_config: in-network filtering thresholds (Section 3.5);
            pass :meth:`FilterConfig.disabled` to forward every report.
        regulate: apply boundary regulation Rules 1-2 at the sink.
        regression: local surface model for the gradient estimate --
            ``"linear"`` (the paper's choice, Eq. 2) or ``"quadratic"``
            (the richer model Section 3.3 mentions; falls back to linear
            on neighbourhoods too small for six coefficients).
        link_model: optional lossy-link model for the report collection
            phase (the paper assumes perfect links; see
            :mod:`repro.network.links`).  Retransmission attempts are
            charged and exhausted reports are lost in transit.
        link_seed: seed for the link-loss randomness (kept separate from
            deployment randomness so runs stay reproducible).
        fault_plan: optional :class:`FaultPlan` applied during collection
            (mid-epoch crashes, burst loss, corruption, duplication);
            mutually exclusive with ``link_model``.
        transport_config: defense knobs of the collection transport;
            defaults to every defense on (which charges nothing extra at
            zero faults).
        tile_size: optional spatial tile edge length; under a fault plan
            the collection transport resolves each level's draws per
            sender-tile (:mod:`repro.network.tiling`), bit-identical to
            the untiled path at any tile size but memory-bounded by the
            largest tile.  None keeps the single global batch.
        tile_jobs: worker processes for per-tile resolution (1 = inline).
    """

    name = "iso-map"

    def __init__(
        self,
        query: ContourQuery,
        filter_config: Optional[FilterConfig] = None,
        regulate: bool = True,
        regression: str = "linear",
        link_model: Optional["LossyLinkModel"] = None,
        link_seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        transport_config: Optional[TransportConfig] = None,
        tile_size: Optional[float] = None,
        tile_jobs: int = 1,
    ):
        if regression not in ("linear", "quadratic"):
            raise ValueError(f"unknown regression model {regression!r}")
        self.query = query
        self.filter_config = (
            filter_config if filter_config is not None else FilterConfig()
        )
        self.regulate = regulate
        self.regression = regression
        self.link_model = link_model
        self.link_seed = link_seed
        self.fault_plan = fault_plan
        self.transport_config = transport_config
        self.tile_size = tile_size
        self.tile_jobs = tile_jobs

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, network: SensorNetwork) -> IsoMapResult:
        """Execute one full contour-mapping epoch."""
        costs = CostAccountant(network.n_nodes)
        self._disseminate_query(network, costs)
        detection = detect_isoline_nodes(network, self.query, costs)
        generated = self._generate_reports(network, detection, costs)
        tiling = None
        if (
            self.tile_size is not None
            and self.fault_plan is not None
            and not self.fault_plan.is_null
        ):
            tiling = TilePartition.build(
                network.positions_array, network.bounds, self.tile_size
            )
        transport = EpochTransport(
            network,
            costs,
            config=self.transport_config,
            plan=self.fault_plan,
            link_model=self.link_model,
            link_seed=self.link_seed,
            mangler=make_report_mangler(self.query, network.bounds),
            tiling=tiling,
            tile_jobs=self.tile_jobs,
        )
        delivered, dropped = self._collect(network, generated, costs, transport)
        degradation = transport.finalize()
        costs.reports_generated = len(generated)
        costs.reports_delivered = len(delivered)

        sink_node = network.nodes[network.sink_index]
        sink_value = sink_node.value if sink_node.can_sense else None
        contour_map = build_contour_map(
            delivered,
            self.query.isolevels,
            network.bounds,
            sink_value=sink_value,
            regulate=self.regulate,
        )
        return IsoMapResult(
            contour_map=contour_map,
            costs=costs,
            detection=detection,
            generated_reports=generated,
            delivered_reports=delivered,
            dropped_by_filter=dropped,
            degradation=degradation,
        )

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _disseminate_query(
        self, network: SensorNetwork, costs: CostAccountant
    ) -> None:
        """Flood the query down the tree: one broadcast per internal node."""
        for node in network.nodes:
            if node.level is None or not node.alive:
                continue
            reachable_children = [
                c for c in node.children if network.nodes[c].level is not None
            ]
            if reachable_children:
                costs.charge_local_broadcast(
                    node.node_id, reachable_children, QUERY_BYTES
                )

    def _generate_reports(
        self,
        network: SensorNetwork,
        detection: DetectionResult,
        costs: CostAccountant,
    ) -> List[IsolineReport]:
        """Gradient estimation and report creation at each isoline node."""
        reports: List[IsolineReport] = []
        items = list(detection.isoline_nodes.items())
        # Positions as the application knows them: the localisation
        # estimate when one ran, ground truth otherwise.
        positions = [
            network.bounds.clamp(network.nodes[node_id].app_position)
            for node_id, _ in items
        ]
        data_rows = [
            detection.neighborhood_data.get(node_id, []) for node_id, _ in items
        ]
        linear_estimates = None
        if self.regression == "linear":
            # All plane regressions in one batched solve; bit-identical to
            # calling estimate_gradient per node (see estimate_gradients_batch).
            linear_estimates = estimate_gradients_batch(
                [
                    (positions[k], network.nodes[node_id].value, data_rows[k])
                    for k, (node_id, _) in enumerate(items)
                ]
            )
        for k, (node_id, isolevel) in enumerate(items):
            node = network.nodes[node_id]
            position = positions[k]
            data = data_rows[k]
            estimate = None
            if self.regression == "quadratic":
                from repro.core.gradient_quadratic import estimate_gradient_quadratic

                estimate = estimate_gradient_quadratic(position, node.value, data)
                if estimate is None:
                    estimate = estimate_gradient(position, node.value, data)
            else:
                estimate = linear_estimates[k]
            if estimate is not None:
                costs.charge_ops(node_id, estimate.ops)
                direction = estimate.direction
            else:
                direction = self._fallback(node, position, data)
                costs.charge_ops(node_id, OPS_FALLBACK)
                if direction is None:
                    continue  # no usable neighbourhood at all
            reports.append(
                IsolineReport(
                    isolevel=isolevel,
                    position=position,
                    direction=direction,
                    source=node_id,
                )
            )
        return reports

    @staticmethod
    def _fallback(node, position, data):
        """Two-point descent estimate from the most contrasting neighbour."""
        if not data:
            return None
        other_pos, other_val = max(data, key=lambda pv: abs(pv[1] - node.value))
        return fallback_direction(position, node.value, other_pos, other_val)

    def _collect(
        self,
        network: SensorNetwork,
        reports: List[IsolineReport],
        costs: CostAccountant,
        transport: EpochTransport,
    ):
        """Forward reports up the tree with per-node in-network filtering.

        Children transmit before their parents (the TAG epoch schedule),
        so by the time a node forwards, every report routed through it has
        been offered to its filter.  All hop traffic goes through the
        fault-tolerant transport, which degenerates to the classic
        perfect-link walk (byte-identical charges) under a null plan.
        """
        tree = network.tree
        filters: Dict[int, InNetworkFilter] = {}
        outbox: Dict[int, List[Tuple[IsolineReport, int]]] = {}
        delivered: List[IsolineReport] = []
        dropped = 0

        def filter_at(node_id: int) -> InNetworkFilter:
            if node_id not in filters:
                filters[node_id] = InNetworkFilter(self.filter_config)
            return filters[node_id]

        # Each source offers its own report to its own filter first.
        for r in reports:
            rid = transport.register(group=r.isolevel)
            if filter_at(r.source).offer(r, r.source, costs):
                outbox.setdefault(r.source, []).append((r, rid))
            else:
                dropped += 1  # duplicate position at the same node
                transport.mark_filtered(rid)

        def frames_for(u: int) -> List[OutFrame]:
            return [
                OutFrame(nbytes=r.wire_bytes, rids=(rid,), payload=r)
                for r, rid in outbox.pop(u, ())
            ]

        def on_arrival(_sender, receiver, frame, arrived, _is_dup):
            nonlocal dropped
            rid = frame.rids[0]
            if receiver == tree.sink:
                if transport.deliver_at_sink(rid):
                    delivered.append(arrived)
            elif filter_at(receiver).offer(arrived, receiver, costs):
                outbox.setdefault(receiver, []).append((arrived, rid))
            else:
                dropped += 1
                transport.mark_filtered(rid)

        transport.run_collection(frames_for, on_arrival)
        return delivered, dropped
