"""The end-to-end Iso-Map protocol run (Section 3).

Phases: query dissemination down the routing tree, distributed isoline-
node detection, local gradient estimation and report generation,
tree collection with in-network filtering, and sink-side reconstruction.
All traffic and computation is charged to a :class:`CostAccountant` at
the point it is simulated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.contour_map import ContourMap, build_contour_map
from repro.core.detection import DetectionResult, detect_isoline_nodes
from repro.core.filtering import FilterConfig, InNetworkFilter
from repro.core.gradient import (
    estimate_gradient,
    estimate_gradients_batch,
    fallback_direction,
)
from repro.core.query import ContourQuery
from repro.core.reports import IsolineReport
from repro.core.wire import QUERY_BYTES
from repro.network import CostAccountant, SensorNetwork
from repro.network.links import LossyLinkModel, charge_lossy_hop

#: Ops charged for the two-point fallback direction estimate.
OPS_FALLBACK = 6


@dataclass
class IsoMapResult:
    """Everything a single Iso-Map epoch produces.

    Attributes:
        contour_map: the sink's reconstruction.
        costs: per-node traffic/computation counters for the whole run.
        detection: the detection-phase outcome (isoline nodes, candidates).
        generated_reports: reports created at isoline nodes.
        delivered_reports: reports that reached the sink after filtering.
        dropped_by_filter: reports discarded by in-network filtering.
    """

    contour_map: ContourMap
    costs: CostAccountant
    detection: DetectionResult
    generated_reports: List[IsolineReport] = field(default_factory=list)
    delivered_reports: List[IsolineReport] = field(default_factory=list)
    dropped_by_filter: int = 0


class IsoMapProtocol:
    """Runs Iso-Map contour mapping over a :class:`SensorNetwork`.

    Args:
        query: the contour query the sink disseminates.
        filter_config: in-network filtering thresholds (Section 3.5);
            pass :meth:`FilterConfig.disabled` to forward every report.
        regulate: apply boundary regulation Rules 1-2 at the sink.
        regression: local surface model for the gradient estimate --
            ``"linear"`` (the paper's choice, Eq. 2) or ``"quadratic"``
            (the richer model Section 3.3 mentions; falls back to linear
            on neighbourhoods too small for six coefficients).
        link_model: optional lossy-link model for the report collection
            phase (the paper assumes perfect links; see
            :mod:`repro.network.links`).  Retransmission attempts are
            charged and exhausted reports are lost in transit.
        link_seed: seed for the link-loss randomness (kept separate from
            deployment randomness so runs stay reproducible).
    """

    name = "iso-map"

    def __init__(
        self,
        query: ContourQuery,
        filter_config: Optional[FilterConfig] = None,
        regulate: bool = True,
        regression: str = "linear",
        link_model: Optional["LossyLinkModel"] = None,
        link_seed: int = 0,
    ):
        if regression not in ("linear", "quadratic"):
            raise ValueError(f"unknown regression model {regression!r}")
        self.query = query
        self.filter_config = (
            filter_config if filter_config is not None else FilterConfig()
        )
        self.regulate = regulate
        self.regression = regression
        self.link_model = link_model
        self.link_seed = link_seed

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, network: SensorNetwork) -> IsoMapResult:
        """Execute one full contour-mapping epoch."""
        costs = CostAccountant(network.n_nodes)
        self._disseminate_query(network, costs)
        detection = detect_isoline_nodes(network, self.query, costs)
        generated = self._generate_reports(network, detection, costs)
        delivered, dropped = self._collect(network, generated, costs)
        costs.reports_generated = len(generated)
        costs.reports_delivered = len(delivered)

        sink_node = network.nodes[network.sink_index]
        sink_value = sink_node.value if sink_node.can_sense else None
        contour_map = build_contour_map(
            delivered,
            self.query.isolevels,
            network.bounds,
            sink_value=sink_value,
            regulate=self.regulate,
        )
        return IsoMapResult(
            contour_map=contour_map,
            costs=costs,
            detection=detection,
            generated_reports=generated,
            delivered_reports=delivered,
            dropped_by_filter=dropped,
        )

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _disseminate_query(
        self, network: SensorNetwork, costs: CostAccountant
    ) -> None:
        """Flood the query down the tree: one broadcast per internal node."""
        for node in network.nodes:
            if node.level is None or not node.alive:
                continue
            reachable_children = [
                c for c in node.children if network.nodes[c].level is not None
            ]
            if reachable_children:
                costs.charge_local_broadcast(
                    node.node_id, reachable_children, QUERY_BYTES
                )

    def _generate_reports(
        self,
        network: SensorNetwork,
        detection: DetectionResult,
        costs: CostAccountant,
    ) -> List[IsolineReport]:
        """Gradient estimation and report creation at each isoline node."""
        reports: List[IsolineReport] = []
        items = list(detection.isoline_nodes.items())
        # Positions as the application knows them: the localisation
        # estimate when one ran, ground truth otherwise.
        positions = [
            network.bounds.clamp(network.nodes[node_id].app_position)
            for node_id, _ in items
        ]
        data_rows = [
            detection.neighborhood_data.get(node_id, []) for node_id, _ in items
        ]
        linear_estimates = None
        if self.regression == "linear":
            # All plane regressions in one batched solve; bit-identical to
            # calling estimate_gradient per node (see estimate_gradients_batch).
            linear_estimates = estimate_gradients_batch(
                [
                    (positions[k], network.nodes[node_id].value, data_rows[k])
                    for k, (node_id, _) in enumerate(items)
                ]
            )
        for k, (node_id, isolevel) in enumerate(items):
            node = network.nodes[node_id]
            position = positions[k]
            data = data_rows[k]
            estimate = None
            if self.regression == "quadratic":
                from repro.core.gradient_quadratic import estimate_gradient_quadratic

                estimate = estimate_gradient_quadratic(position, node.value, data)
                if estimate is None:
                    estimate = estimate_gradient(position, node.value, data)
            else:
                estimate = linear_estimates[k]
            if estimate is not None:
                costs.charge_ops(node_id, estimate.ops)
                direction = estimate.direction
            else:
                direction = self._fallback(node, position, data)
                costs.charge_ops(node_id, OPS_FALLBACK)
                if direction is None:
                    continue  # no usable neighbourhood at all
            reports.append(
                IsolineReport(
                    isolevel=isolevel,
                    position=position,
                    direction=direction,
                    source=node_id,
                )
            )
        return reports

    @staticmethod
    def _fallback(node, position, data):
        """Two-point descent estimate from the most contrasting neighbour."""
        if not data:
            return None
        other_pos, other_val = max(data, key=lambda pv: abs(pv[1] - node.value))
        return fallback_direction(position, node.value, other_pos, other_val)

    def _collect(
        self,
        network: SensorNetwork,
        reports: List[IsolineReport],
        costs: CostAccountant,
    ):
        """Forward reports up the tree with per-node in-network filtering.

        Children transmit before their parents (the TAG epoch schedule),
        so by the time a node forwards, every report routed through it has
        been offered to its filter.
        """
        tree = network.tree
        filters: Dict[int, InNetworkFilter] = {}
        outbox: Dict[int, List[IsolineReport]] = {}
        delivered: List[IsolineReport] = []
        dropped = 0
        link_rng = random.Random(self.link_seed)

        def filter_at(node_id: int) -> InNetworkFilter:
            if node_id not in filters:
                filters[node_id] = InNetworkFilter(self.filter_config)
            return filters[node_id]

        # Each source offers its own report to its own filter first.
        for r in reports:
            if filter_at(r.source).offer(r, r.source, costs):
                outbox.setdefault(r.source, []).append(r)
            else:
                dropped += 1  # duplicate position at the same node

        for u in tree.subtree_order_bottom_up():
            if u == tree.sink:
                continue
            parent = tree.parent[u]
            if parent is None:
                continue
            for r in outbox.get(u, ()):
                if self.link_model is not None:
                    ok = charge_lossy_hop(
                        self.link_model, u, parent, r.wire_bytes, costs, link_rng
                    )
                    if not ok:
                        continue  # lost in transit after retries
                else:
                    costs.charge_hop(u, parent, r.wire_bytes)
                if parent == tree.sink:
                    delivered.append(r)
                elif filter_at(parent).offer(r, parent, costs):
                    outbox.setdefault(parent, []).append(r)
                else:
                    dropped += 1
        return delivered, dropped
