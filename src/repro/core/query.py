"""The sink's contour query (Section 3.2).

A query specifies the data space ``[value_lo, value_hi]`` and the
granularity ``T``; the desired isolines have isolevels
``v_i = value_lo + i * T`` inside the data space.  The border region
half-width ``epsilon`` defaults to the paper's ``0.05 * T`` and remains
"adjustable by concrete applications".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.field.contours import isolevels_for


@dataclass(frozen=True)
class ContourQuery:
    """A contour-mapping query disseminated from the sink.

    Attributes:
        value_lo: lower end of the queried data space.
        value_hi: upper end of the queried data space.
        granularity: isolevel spacing ``T``.
        epsilon_fraction: border half-width as a fraction of ``T``
            (Definition 3.1's ``[v_i - eps, v_i + eps]``); the paper uses
            0.05 and studies larger values in Figs. 11-12.
        k_hop: neighbourhood radius (hops) for the local gradient
            regression; "the query scope can be adjusted within k-hop
            neighbors" (Section 3.3).
        detection_mode: ``"border"`` is the paper's Definition 3.1 (both
            conditions).  ``"straddle"`` is this reproduction's adaptive
            extension: condition 1's fixed value border is replaced by
            "closer to the isolevel than the straddling neighbour", which
            self-appoints a node at EVERY radio edge crossing the isoline
            regardless of how flat the field is locally -- recovering the
            sparse-deployment regime where a fixed 0.05 T border catches
            almost nobody (see EXPERIMENTS.md, Fig. 10/11a deviation).
    """

    value_lo: float
    value_hi: float
    granularity: float
    epsilon_fraction: float = 0.05
    k_hop: int = 1
    detection_mode: str = "border"

    def __post_init__(self) -> None:
        if self.granularity <= 0:
            raise ValueError("granularity must be positive")
        if self.value_hi < self.value_lo:
            raise ValueError("empty data space")
        if not 0 < self.epsilon_fraction < 0.5:
            raise ValueError(
                "epsilon_fraction must be in (0, 0.5): beyond half the "
                "granularity the border regions of adjacent isolevels overlap"
            )
        if self.k_hop < 1:
            raise ValueError("k_hop must be at least 1")
        if self.detection_mode not in ("border", "straddle"):
            raise ValueError(f"unknown detection mode {self.detection_mode!r}")

    @property
    def epsilon(self) -> float:
        """Border-region half-width in value units."""
        return self.epsilon_fraction * self.granularity

    @property
    def isolevels(self) -> List[float]:
        """The queried isolevels, ascending."""
        return isolevels_for(self.value_lo, self.value_hi, self.granularity)

    def matching_isolevel(self, value: float) -> Optional[float]:
        """The isolevel whose border region contains ``value``, if any.

        Because ``epsilon < T/2``, border regions are disjoint and at most
        one isolevel matches.
        """
        for v in self.isolevels:
            if abs(value - v) <= self.epsilon:
                return v
        return None
