"""Wire codec: the 2-byte-per-parameter report format, for real.

Section 5.1 of the paper: "Each parameter in a report uses two bytes,
such as the sensory value, position, gradient, etc."  Two bytes per
parameter means fixed-point quantisation.  This module implements the
actual encoding so the byte counts charged by the cost accounting
correspond to a format that round-trips:

- positions quantise each coordinate to uint16 over the field bounds
  (resolution: field side / 65535 -- about 8 mm for the 400 m harbor);
- sensory values / isolevels quantise over the query's data space padded
  by one granularity on each side (so border-region values fit);
- gradient directions quantise the angle to uint16 over [0, 2 pi)
  (resolution ~0.0055 degrees).

Quantisation error is orders of magnitude below the protocol's own error
sources; ``tests/core/test_codec.py`` pins the bounds and the end-to-end
neutrality.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

from repro.core.query import ContourQuery
from repro.core.reports import IsolineReport
from repro.core.wire import ISOLINE_REPORT_BYTES, QUERY_BYTES
from repro.geometry import BoundingBox, Vec

_U16_MAX = 0xFFFF


@dataclass(frozen=True)
class ReportCodec:
    """Quantising encoder/decoder for isoline reports.

    Args:
        bounds: the field extent (position quantisation range).
        value_lo / value_hi: the value quantisation range; use the query's
            data space padded by one granularity (see :meth:`for_query`).
    """

    bounds: BoundingBox
    value_lo: float
    value_hi: float

    def __post_init__(self) -> None:
        if self.value_hi <= self.value_lo:
            raise ValueError("empty value quantisation range")

    @staticmethod
    def for_query(query: ContourQuery, bounds: BoundingBox) -> "ReportCodec":
        """The codec a deployment derives from its standing query."""
        pad = query.granularity
        return ReportCodec(
            bounds=bounds,
            value_lo=query.value_lo - pad,
            value_hi=query.value_hi + pad,
        )

    # ------------------------------------------------------------------
    # Scalar quantisers
    # ------------------------------------------------------------------

    def _q(self, x: float, lo: float, hi: float) -> int:
        t = (x - lo) / (hi - lo)
        t = min(max(t, 0.0), 1.0)
        return round(t * _U16_MAX)

    def _dq(self, q: int, lo: float, hi: float) -> float:
        return lo + (q / _U16_MAX) * (hi - lo)

    def quantize_value(self, v: float) -> int:
        return self._q(v, self.value_lo, self.value_hi)

    def dequantize_value(self, q: int) -> float:
        return self._dq(q, self.value_lo, self.value_hi)

    def quantize_position(self, p: Vec) -> tuple:
        b = self.bounds
        return (self._q(p[0], b.xmin, b.xmax), self._q(p[1], b.ymin, b.ymax))

    def dequantize_position(self, q: tuple) -> Vec:
        b = self.bounds
        return (self._dq(q[0], b.xmin, b.xmax), self._dq(q[1], b.ymin, b.ymax))

    @staticmethod
    def quantize_angle(direction: Vec) -> int:
        theta = math.atan2(direction[1], direction[0]) % (2 * math.pi)
        return round(theta / (2 * math.pi) * _U16_MAX) & _U16_MAX

    @staticmethod
    def dequantize_angle(q: int) -> Vec:
        theta = q / _U16_MAX * 2 * math.pi
        return (math.cos(theta), math.sin(theta))

    # ------------------------------------------------------------------
    # Report encode / decode
    # ------------------------------------------------------------------

    def encode(self, report: IsolineReport) -> bytes:
        """Serialise to the paper's 8-byte wire format.

        Layout: ``<HHHH`` = (value, x, y, gradient angle), little endian.
        The source node id is NOT on the wire -- the position identifies
        the source (Section 3.3's 3-tuple has exactly v, p, d).
        """
        qx, qy = self.quantize_position(report.position)
        packed = struct.pack(
            "<HHHH",
            self.quantize_value(report.isolevel),
            qx,
            qy,
            self.quantize_angle(report.direction),
        )
        assert len(packed) == ISOLINE_REPORT_BYTES
        return packed

    def decode(self, payload: bytes, source: int = -1) -> IsolineReport:
        """Deserialise one report.

        Args:
            payload: exactly ISOLINE_REPORT_BYTES bytes.
            source: optional simulation-side source id to re-attach.

        Raises:
            ValueError: on a payload of the wrong size.
        """
        if len(payload) != ISOLINE_REPORT_BYTES:
            raise ValueError(
                f"isoline report payload must be {ISOLINE_REPORT_BYTES} bytes, "
                f"got {len(payload)}"
            )
        qv, qx, qy, qa = struct.unpack("<HHHH", payload)
        return IsolineReport(
            isolevel=self.dequantize_value(qv),
            position=self.dequantize_position((qx, qy)),
            direction=self.dequantize_angle(qa),
            source=source,
        )

    def roundtrip(self, report: IsolineReport) -> IsolineReport:
        """Encode-then-decode (what the sink actually sees)."""
        return self.decode(self.encode(report), source=report.source)

    # ------------------------------------------------------------------
    # Resolution introspection
    # ------------------------------------------------------------------

    @property
    def position_resolution(self) -> float:
        """Worst-axis position quantisation step."""
        return max(self.bounds.width, self.bounds.height) / _U16_MAX

    @property
    def value_resolution(self) -> float:
        return (self.value_hi - self.value_lo) / _U16_MAX

    @property
    def angle_resolution_deg(self) -> float:
        return 360.0 / _U16_MAX


def encode_query(query: ContourQuery) -> bytes:
    """Serialise a contour query to its 8-byte dissemination format.

    Layout: ``<ffHH`` won't fit four 2-byte params; the paper's query has
    (value_lo, value_hi, granularity, epsilon).  We use four half-scaled
    fixed-point fields over a [-1024, 1024) value universe with 1/32
    resolution -- ample for environmental attributes.
    """
    def q(x: float) -> int:
        scaled = round((x + 1024.0) * 32.0)
        if not 0 <= scaled <= _U16_MAX:
            raise ValueError(f"query parameter {x} outside the wire universe")
        return scaled

    packed = struct.pack(
        "<HHHH",
        q(query.value_lo),
        q(query.value_hi),
        q(query.granularity),
        q(query.epsilon),
    )
    assert len(packed) == QUERY_BYTES
    return packed


def decode_query(payload: bytes, k_hop: int = 1) -> ContourQuery:
    """Deserialise a query; raises ValueError on a bad payload size."""
    if len(payload) != QUERY_BYTES:
        raise ValueError(f"query payload must be {QUERY_BYTES} bytes")

    def dq(s: int) -> float:
        return s / 32.0 - 1024.0

    lo, hi, gran, eps = (dq(s) for s in struct.unpack("<HHHH", payload))
    return ContourQuery(
        value_lo=lo,
        value_hi=hi,
        granularity=gran,
        epsilon_fraction=eps / gran,
        k_hop=k_hop,
    )
