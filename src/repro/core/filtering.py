"""In-network report filtering (Section 3.5).

Intermediate routing-tree nodes compare each report passing through them
against the reports they have already accepted for forwarding.  Two
same-isolevel reports are redundant when BOTH their angular separation
``s_a`` (angle between gradient directions) and their distance separation
``s_d`` (distance between isopositions) fall below the configured
thresholds; the later one is dropped.  Because redundancy is judged on
``s_a`` as well as ``s_d``, thinning is even along isolines and keeps
high-curvature stretches (where gradients turn fast) densely reported --
the property Fig. 9 illustrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.reports import IsolineReport
from repro.network import CostAccountant

#: Arithmetic operations per pairwise report comparison (an angle and a
#: distance evaluation plus two threshold tests).
OPS_PER_COMPARISON = 8


@dataclass(frozen=True)
class FilterConfig:
    """Thresholds for the in-network filter.

    Attributes:
        angular_separation_deg: ``s_a`` threshold in degrees (the paper's
            default operating point is 30).
        distance_separation: ``s_d`` threshold in field units (paper: 4).
        enabled: a disabled filter forwards everything (used to measure
            the unfiltered report stream, Fig. 13's origin point).
    """

    angular_separation_deg: float = 30.0
    distance_separation: float = 4.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.angular_separation_deg < 0 or self.distance_separation < 0:
            raise ValueError("filter thresholds must be non-negative")

    @property
    def angular_separation_rad(self) -> float:
        return math.radians(self.angular_separation_deg)

    @staticmethod
    def disabled() -> "FilterConfig":
        return FilterConfig(0.0, 0.0, enabled=False)


class InNetworkFilter:
    """The filter state of one intermediate node.

    Stores the reports the node has accepted this epoch, keyed by isolevel
    so only same-isolevel reports are compared ("the sink separately
    constructs isolines of different isolevels" -- comparing across levels
    would merge distinct contours).
    """

    def __init__(self, config: FilterConfig):
        self.config = config
        self._kept: Dict[float, List[IsolineReport]] = {}

    @property
    def kept_reports(self) -> List[IsolineReport]:
        """All reports accepted so far, in arrival order per level."""
        return [r for reports in self._kept.values() for r in reports]

    def offer(
        self, report: IsolineReport, node_id: int, costs: CostAccountant
    ) -> bool:
        """Test ``report`` against the kept set; keep it unless redundant.

        Returns True when the report survives (and is now kept), False
        when it was dropped.  Each pairwise comparison charges
        ``OPS_PER_COMPARISON`` to ``node_id``.
        """
        if not self.config.enabled:
            self._kept.setdefault(report.isolevel, []).append(report)
            return True
        peers = self._kept.setdefault(report.isolevel, [])
        sa_max = self.config.angular_separation_rad
        sd_max = self.config.distance_separation
        for peer in peers:
            costs.charge_ops(node_id, OPS_PER_COMPARISON)
            if (
                report.distance_separation(peer) <= sd_max
                and report.angular_separation(peer) <= sa_max
            ):
                return False
        peers.append(report)
        return True

    def offer_all(
        self, reports: List[IsolineReport], node_id: int, costs: CostAccountant
    ) -> Tuple[List[IsolineReport], int]:
        """Offer a batch; return (survivors, dropped count)."""
        survivors: List[IsolineReport] = []
        dropped = 0
        for r in reports:
            if self.offer(r, node_id, costs):
                survivors.append(r)
            else:
                dropped += 1
        return survivors, dropped
