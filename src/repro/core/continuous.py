"""Continuous monitoring: epoch-delta Iso-Map.

The harbor deployment (Section 2) monitors *continuously*: the sink
wants an up-to-date isobath map at every epoch, but between epochs the
field drifts slowly (tides) or jumps locally (storms).  Re-running the
full protocol each epoch re-transmits mostly unchanged reports.

``ContinuousIsoMap`` keeps per-source state at the isoline nodes and a
report cache at the sink:

- a node transmits only when its report *changed*: it newly became an
  isoline node, its isolevel changed, or its gradient direction rotated
  by more than ``angle_delta_deg``;
- a node that stops being an isoline node sends a small *retraction*
  (its position only), and the sink evicts the cached report;
- the sink updates the contour map from the cache each epoch -- by
  default *incrementally*, splicing the delta into a retained per-level
  map (:class:`repro.core.contour_map.SinkReconstructor`, bit-identical
  to a from-scratch rebuild) rather than paying the full Voronoi +
  boundary cost for the mostly-unchanged remainder.

In steady state traffic collapses to the churn rate; after a local event
only the affected stretch of isolines re-reports.  This is the natural
"implementation experience" extension the paper's future-work section
points toward, built entirely from the primitives the paper defines.

In-network filtering is intentionally NOT applied to delta reports: a
dropped delta would desynchronise the sink cache.  The delta suppression
itself plays the filter's role (and typically cuts more).

With a :class:`~repro.core.prediction.PredictionConfig` the monitor
additionally suppresses reports the sink could have *predicted*: node
and sink mirror an LMS drift predictor over the delivered stream and
suppressed epochs are served from its deterministic extrapolation (see
:mod:`repro.core.prediction`).  ``prediction=None`` -- the default --
bypasses the predictor entirely and stays byte-identical to the
pre-prediction epoch streams (the dead-reckoning contract, pinned by
``tests/core/test_prediction_off_golden.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import profiling
from repro.core.contour_map import ContourMap, SinkReconstructor, build_contour_map
from repro.core.detection import detect_isoline_nodes
from repro.core.prediction import PredictionConfig, PredictorBank
from repro.core.protocol import IsoMapProtocol
from repro.core.query import ContourQuery
from repro.core.reports import IsolineReport
from repro.core.wire import BYTES_PER_PARAM
from repro.geometry import Vec, angle_between
from repro.network import CostAccountant, SensorNetwork

#: A retraction carries the source position only (x, y).
RETRACTION_BYTES = 2 * BYTES_PER_PARAM


@dataclass
class EpochResult:
    """Outcome of one continuous-monitoring epoch.

    Attributes:
        contour_map: the sink's map after applying this epoch's deltas.
        costs: cost counters for THIS epoch only.
        new_reports: reports transmitted this epoch (new or changed).
        retractions: sources whose cached report was evicted.
        suppressed: isoline nodes whose report was unchanged (no tx).
        cached_reports: size of the sink cache after the epoch.
        delivered_reports: the subset of ``new_reports`` that actually
            reached the sink (a disconnected source transmits into the
            void); this is exactly what updated the sink cache, so it is
            the epoch delta a serving layer must forward to clients.
        sink_value: the sink's own sensed value this epoch (None when the
            sink cannot sense) -- the disambiguator for all-empty levels.
        predicted: reports suppressed by the drift predictor this epoch
            (0 when ``prediction=None``).
        heartbeats: transmissions forced purely by the heartbeat cap --
            the prediction was within tolerance but the track had been
            extrapolated for ``heartbeat`` consecutive epochs.
        staleness: sink-side staleness in epochs -- the age of the
            oldest extrapolated cache entry (0 without prediction, and
            bounded by the configured heartbeat with it).
        tracks: live predictor tracks after the epoch.
        cache_updates: the sink-cache entries added or changed this
            epoch.  Without prediction this *is* ``delivered_reports``
            (the same list object); with prediction it also carries the
            dead-reckoned motion of suppressed entries, so a serving
            layer must consume ``cache_updates``/``cache_removed`` --
            not ``delivered_reports``/``retractions`` -- to mirror the
            cache.
        cache_removed: source keys evicted from the sink cache this
            epoch (``retractions`` without prediction).
    """

    contour_map: ContourMap
    costs: CostAccountant
    new_reports: List[IsolineReport] = field(default_factory=list)
    retractions: List[int] = field(default_factory=list)
    suppressed: int = 0
    cached_reports: int = 0
    delivered_reports: List[IsolineReport] = field(default_factory=list)
    sink_value: Optional[float] = None
    predicted: int = 0
    heartbeats: int = 0
    staleness: int = 0
    tracks: int = 0
    cache_updates: List[IsolineReport] = field(default_factory=list)
    cache_removed: List[int] = field(default_factory=list)


class ContinuousIsoMap:
    """Epoch-delta contour monitoring on top of Iso-Map's primitives.

    Args:
        query: the standing contour query (disseminated once, in the
            first epoch).
        angle_delta_deg: gradient-direction change (degrees) above which
            a node re-reports; the value trade-off mirrors the filter's
            ``s_a``.
        regulate: apply boundary regulation when rebuilding maps.
        incremental: when True (default) the sink applies each epoch's
            delta to a retained per-level map via
            :class:`~repro.core.contour_map.SinkReconstructor` instead of
            rebuilding from scratch; the resulting maps are bit-identical
            either way (the reconstructor's contract).
        full_rebuild_threshold: dirty-cell fraction above which the
            incremental sink falls back to a full per-level rebuild.
        prediction: enable model-predictive suppression with this
            :class:`~repro.core.prediction.PredictionConfig`.  ``None``
            (the default) runs the original epoch-delta protocol
            byte-for-byte (the dead-reckoning contract).
    """

    def __init__(
        self,
        query: ContourQuery,
        angle_delta_deg: float = 10.0,
        regulate: bool = True,
        incremental: bool = True,
        full_rebuild_threshold: float = 0.35,
        simplify_tolerance: float = 0.0,
        prediction: Optional[PredictionConfig] = None,
    ):
        if angle_delta_deg < 0:
            raise ValueError("angle_delta_deg must be non-negative")
        self.query = query
        self.angle_delta_rad = math.radians(angle_delta_deg)
        self.regulate = regulate
        self.incremental = incremental
        self.full_rebuild_threshold = full_rebuild_threshold
        #: Forwarded to every epoch's ContourMap: > 0 makes its
        #: ``isolines()`` return tolerance-bounded simplifications.
        self.simplify_tolerance = simplify_tolerance
        self.prediction = prediction
        self._protocol = IsoMapProtocol(query, regulate=regulate)
        self._node_state: Dict[int, IsolineReport] = {}
        self._sink_cache: Dict[int, IsolineReport] = {}
        self._reconstructor: Optional[SinkReconstructor] = None
        self._first_epoch = True
        self._epochs_run = 0
        self._bank: Optional[PredictorBank] = (
            None if prediction is None else PredictorBank(prediction)
        )
        #: Current isoline membership (source -> position), kept for the
        #: prediction path's retraction decisions.
        self._members: Dict[int, Vec] = {}
        #: Sink-path memo (the satellite perf fix): paths from every
        #: visited source to the sink, shared-suffix cached per tree.
        self._path_cache: Dict[int, np.ndarray] = {}
        self._path_tree: Optional[object] = None

    @property
    def cache_size(self) -> int:
        return len(self._sink_cache)

    @property
    def epochs_run(self) -> int:
        """How many epochs this monitor has processed."""
        return self._epochs_run

    @property
    def sink_reports(self) -> List[IsolineReport]:
        """The sink's current cached reports (insertion-ordered)."""
        return list(self._sink_cache.values())

    @property
    def reconstructor(self) -> Optional[SinkReconstructor]:
        """The incremental sink state (None before the first epoch, or
        when running with ``incremental=False``)."""
        return self._reconstructor

    def epoch(self, network: SensorNetwork) -> EpochResult:
        """Run one sensing epoch and return the delta outcome."""
        costs = CostAccountant(network.n_nodes)
        if self._first_epoch:
            # The standing query is flooded once.
            self._protocol._disseminate_query(network, costs)
            self._first_epoch = False

        detection = detect_isoline_nodes(network, self.query, costs)
        current = {
            r.source: r
            for r in self._protocol._generate_reports(network, detection, costs)
        }

        predicted = heartbeats = staleness = tracks = 0
        if self._bank is None:
            new_reports: List[IsolineReport] = []
            suppressed = 0
            for source, report in current.items():
                previous = self._node_state.get(source)
                if previous is not None and self._unchanged(previous, report):
                    suppressed += 1
                    continue
                self._node_state[source] = report
                new_reports.append(report)

            retractions = [
                source for source in self._node_state if source not in current
            ]
            for source in retractions:
                del self._node_state[source]

            # Transmit deltas and retractions hop by hop (no
            # cross-filtering; see module docstring).
            delivered_reports, _ = self._forward(
                network, new_reports, retractions, costs
            )
            for r in delivered_reports:
                self._sink_cache[r.source] = r
            for source in retractions:
                self._sink_cache.pop(source, None)
            cache_updates = delivered_reports
            cache_removed = retractions
        else:
            bank = self._bank
            with profiling.stage("prediction.predict"):
                bank.advance()
            with profiling.stage("prediction.decide"):
                new_reports, predicted, heartbeats = bank.decide(current)
                leaving = [
                    (s, pos)
                    for s, pos in self._members.items()
                    if s not in current
                ]
                retractions = bank.decide_retractions(leaving, current)
            self._members = {s: r.position for s, r in current.items()}
            suppressed = predicted
            delivered_reports, delivered_retractions = self._forward(
                network, new_reports, retractions, costs
            )
            # The mirrored fold: only what the sink actually received
            # mutates the bank, so node and sink stay in lockstep.
            with profiling.stage("prediction.update"):
                bank.apply(delivered_reports, delivered_retractions)
            with profiling.stage("prediction.extrapolate"):
                new_cache = bank.extrapolated(network.bounds)
            prev_cache = self._sink_cache
            cache_removed = [k for k in prev_cache if k not in new_cache]
            cache_updates = [
                r
                for k, r in new_cache.items()
                if prev_cache.get(k) != r
            ]
            self._sink_cache = new_cache
            staleness = bank.max_age
            tracks = len(bank)

        costs.reports_generated = len(new_reports)
        costs.reports_delivered = len(delivered_reports)

        sink_node = network.nodes[network.sink_index]
        sink_value = sink_node.value if sink_node.can_sense else None
        if self.incremental:
            if self._reconstructor is None:
                self._reconstructor = SinkReconstructor(
                    self.query.isolevels,
                    network.bounds,
                    regulate=self.regulate,
                    full_rebuild_threshold=self.full_rebuild_threshold,
                    simplify_tolerance=self.simplify_tolerance,
                )
            contour_map = self._reconstructor.reconstruct(
                list(self._sink_cache.values()), sink_value=sink_value
            )
        else:
            contour_map = build_contour_map(
                list(self._sink_cache.values()),
                self.query.isolevels,
                network.bounds,
                sink_value=sink_value,
                regulate=self.regulate,
                simplify_tolerance=self.simplify_tolerance,
            )
        self._epochs_run += 1
        return EpochResult(
            contour_map=contour_map,
            costs=costs,
            new_reports=new_reports,
            retractions=retractions,
            suppressed=suppressed,
            cached_reports=len(self._sink_cache),
            delivered_reports=delivered_reports,
            sink_value=sink_value,
            predicted=predicted,
            heartbeats=heartbeats,
            staleness=staleness,
            tracks=tracks,
            cache_updates=cache_updates,
            cache_removed=cache_removed,
        )

    def _unchanged(self, previous: IsolineReport, report: IsolineReport) -> bool:
        """True when the new report carries no news worth transmitting."""
        if previous.isolevel != report.isolevel:
            return False
        return (
            angle_between(previous.direction, report.direction)
            <= self.angle_delta_rad
        )

    def _path(self, tree, source: int) -> np.ndarray:
        """Memoized sink path for ``source`` under the current tree.

        ``RoutingTree.path_to_sink`` walks the parent chain on every
        call; across epochs the tree is stable, so the monitor caches
        each walked path -- and, because every suffix of a sink path is
        itself a sink path, caches all its suffixes too, making later
        lookups along the same branch O(1).  The cache is invalidated
        whenever the network adopts a new tree object (e.g. a rebuild
        after crash failures).
        """
        if tree is not self._path_tree:
            self._path_tree = tree
            self._path_cache = {}
        cache = self._path_cache
        path = cache.get(source)
        if path is None:
            raw = tree.path_to_sink(source)
            for i in range(len(raw)):
                node = raw[i]
                if node in cache:
                    break
                cache[node] = np.asarray(raw[i:], dtype=np.int64)
            path = cache[source]
        return path

    def _forward(
        self,
        network: SensorNetwork,
        reports: List[IsolineReport],
        retractions: List[int],
        costs: CostAccountant,
    ) -> Tuple[List[IsolineReport], List[int]]:
        """Charge hop-by-hop delivery of deltas and retractions.

        Batched accounting over memoized sink paths: per-node totals are
        integers, so one ``np.add.at`` scatter per direction charges the
        exact amounts the scalar hop walk (kept as
        :meth:`_forward_reference`) would -- pinned equal by the
        cost-equality differential in ``tests/core/test_continuous.py``.

        Returns ``(delivered reports, delivered retraction sources)``
        (a disconnected source transmits into the void either way).
        """
        tree = network.tree
        delivered: List[IsolineReport] = []
        delivered_retractions: List[int] = []
        tx_parts: List[np.ndarray] = []
        rx_parts: List[np.ndarray] = []
        nbytes_parts: List[np.ndarray] = []

        def charge(source: int, nbytes: int) -> bool:
            if tree.level[source] is None:
                return False
            path = self._path(tree, source)
            hops = len(path) - 1
            if hops > 0:
                tx_parts.append(path[:-1])
                rx_parts.append(path[1:])
                nbytes_parts.append(np.full(hops, nbytes, dtype=np.int64))
            return True

        for r in reports:
            if charge(r.source, r.wire_bytes):
                delivered.append(r)
        for source in retractions:
            if charge(source, RETRACTION_BYTES):
                delivered_retractions.append(source)
        if nbytes_parts:
            nbytes = np.concatenate(nbytes_parts)
            costs.charge_tx_batch(np.concatenate(tx_parts), nbytes)
            costs.charge_rx_batch(np.concatenate(rx_parts), nbytes)
        return delivered, delivered_retractions

    def _forward_reference(
        self,
        network: SensorNetwork,
        reports: List[IsolineReport],
        retractions: List[int],
        costs: CostAccountant,
    ) -> Tuple[List[IsolineReport], List[int]]:
        """The original per-hop walk (the differential baseline for
        :meth:`_forward`; same delivery results, same per-node charges)."""
        tree = network.tree
        delivered: List[IsolineReport] = []
        delivered_retractions: List[int] = []
        for r in reports:
            if tree.level[r.source] is None:
                continue
            path = tree.path_to_sink(r.source)
            for u, v in zip(path[:-1], path[1:]):
                costs.charge_hop(u, v, r.wire_bytes)
            delivered.append(r)
        for source in retractions:
            if tree.level[source] is None:
                continue
            path = tree.path_to_sink(source)
            for u, v in zip(path[:-1], path[1:]):
                costs.charge_hop(u, v, RETRACTION_BYTES)
            delivered_retractions.append(source)
        return delivered, delivered_retractions
