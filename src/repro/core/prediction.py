"""Model-predictive report suppression for continuous monitoring.

The static angle threshold in :meth:`ContinuousIsoMap._unchanged` only
suppresses reports that did not change.  Under steady drift almost every
isoline report *does* change -- but predictably: the isoline sweeps
across the stationary deployment at a roughly constant velocity, so the
position and gradient direction of tomorrow's reports are a linear
extrapolation of yesterday's.  Following the stochastic-gradient
approach of arXiv:1908.07674 (PAPERS.md), this module learns that
extrapolation online and suppresses every report the sink could have
predicted.

Because sensor nodes never move, a *per-source* position predictor is
vacuous (a source's position is constant; drift manifests as membership
churn, not motion).  The predictor therefore tracks *isoline samples*,
not sources:

- a **track** is one cached isoline sample: position, gradient angle,
  isolevel, and LMS-learned per-epoch velocities for both.  Its key is
  the source id of the last node whose delivered report refreshed it;
- every epoch all tracks **dead-reckon** one step (``p += v``,
  ``theta += omega``); a node whose fresh observation lands within the
  configured tolerances of a track's prediction sends nothing, and both
  mirrors keep serving the extrapolated state;
- a delivered report **corrects** the matching track by a stochastic
  gradient step (``v += mu * innovation``) and re-keys it to the
  reporting source, so tracks glide across the deployment following
  the isoline itself;
- a **heartbeat cap** bounds staleness: after ``heartbeat`` consecutive
  extrapolated epochs the owning node must re-report, and a track that
  nobody refreshes (the isoline left the area) is evicted, so sink
  staleness never exceeds ``heartbeat`` epochs even under loss.

**Mirrored state.** Node and sink evolve *identical* predictor state
from the delivered report stream alone: every mutation of the bank is a
deterministic function of (prior state, delivered reports, delivered
retractions), all of which both ends see.  A node's suppression decision
additionally uses only its own fresh observation.  The simulation keeps
one shared :class:`PredictorBank` per monitor, which is exactly the
state either mirror would reconstruct; distributing it costs each node
only its own track plus its radio neighbourhood's (the repo's usual
idealisation, same as the detection layer's neighbourhood value
queries).

**Kernel pair.** The per-epoch hot loops -- dead-reckoning, the
own-track innovation gate, and the join-vs-track match gate -- follow
the repo's kernel-pair convention: a scalar ``*_reference`` twin and a
vectorized NumPy twin built from the same elementwise expressions, so
the two are bit-identical (pinned by ``tests/core/test_prediction.py``).
The sequential re-key/claim bookkeeping on delivered reports is shared
verbatim by both modes.

``prediction=None`` on :class:`~repro.core.continuous.ContinuousIsoMap`
bypasses this module entirely -- the dead-reckoning contract pins that
path byte-identical to the pre-prediction goldens
(``tests/core/test_prediction_off_golden.py``).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.reports import IsolineReport
from repro.geometry import BoundingBox

TWO_PI = 2.0 * math.pi


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PredictionConfig:
    """Tuning of the model-predictive suppressor (frozen, JSON-able).

    Attributes:
        position_tolerance: a fresh observation within this distance of
            its track's prediction (and within ``angle_tolerance_deg``)
            is suppressed.  This is the knob the traffic/accuracy trade
            hangs on: the served map may deviate from the field by about
            this much before a report is forced.
        angle_tolerance_deg: gradient-direction innovation (degrees)
            above which a report is sent even if the position predicted
            well.
        learning_rate: LMS step for the position velocity
            (``v += mu * (observed - predicted)``).
        angle_learning_rate: LMS step for the angular velocity.
        heartbeat: maximum *consecutive* extrapolated epochs per track.
            A node suppresses only while its track's age is within the
            cap; past it the report is forced (a heartbeat), and a track
            nobody refreshes is evicted -- so sink staleness is bounded
            by ``heartbeat`` epochs even when deltas are lost.
        match_radius: how far from a track's prediction a delivered
            report can re-key (adopt) it.  Must cover one epoch of
            unlearned drift plus the node spacing, or every churn event
            spawns a fresh zero-velocity track and nothing is learned.
        lease: coverage lease, in epochs.  A track that covered *no*
            observation (own or join, suppressed or sent) for this many
            consecutive epochs is a ghost gliding through empty space;
            its last lease holder retracts it instead of letting it
            deposit bogus samples until the heartbeat eviction.
        velocity_clamp: cap on the learned speed, as a multiple of
            ``position_tolerance`` per epoch.  The LMS step on an
            adoption offset can overshoot the true drift by up to
            ``mu * match_radius``; the clamp keeps one bad offset from
            launching the track across the field.
        batched: run the decision kernels through the vectorized twins
            (the default) or the scalar references -- bit-identical
            either way.
    """

    position_tolerance: float = 1.0
    angle_tolerance_deg: float = 35.0
    learning_rate: float = 0.3
    angle_learning_rate: float = 0.3
    heartbeat: int = 8
    match_radius: Optional[float] = None
    lease: int = 1
    velocity_clamp: float = 1.0
    batched: bool = True

    def __post_init__(self) -> None:
        if self.position_tolerance <= 0:
            raise ValueError("position_tolerance must be positive")
        if self.angle_tolerance_deg <= 0:
            raise ValueError("angle_tolerance_deg must be positive")
        if not 0 <= self.learning_rate <= 1:
            raise ValueError("learning_rate must be in [0, 1]")
        if not 0 <= self.angle_learning_rate <= 1:
            raise ValueError("angle_learning_rate must be in [0, 1]")
        if self.heartbeat < 0:
            raise ValueError("heartbeat must be >= 0")
        if self.match_radius is not None and self.match_radius <= 0:
            raise ValueError("match_radius must be positive")
        if self.lease < 1:
            raise ValueError("lease must be >= 1")
        if self.velocity_clamp <= 0:
            raise ValueError("velocity_clamp must be positive")

    @property
    def effective_match_radius(self) -> float:
        """``match_radius`` or its default, twice the tolerance."""
        if self.match_radius is not None:
            return self.match_radius
        return 2.0 * self.position_tolerance

    @property
    def angle_tolerance_rad(self) -> float:
        return math.radians(self.angle_tolerance_deg)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "PredictionConfig":
        return PredictionConfig(**d)


@dataclass
class Track:
    """One mirrored isoline sample (see module docstring).

    ``x``/``y``/``theta`` hold the *current-epoch* state: after
    :meth:`PredictorBank.advance` they are the prediction this epoch's
    decisions gate against, and a delivered correction overwrites them
    with the observation.
    """

    key: int
    isolevel: float
    x: float
    y: float
    theta: float
    vx: float = 0.0
    vy: float = 0.0
    omega: float = 0.0
    #: Epochs since the last delivered refresh (0 = refreshed this epoch).
    age: int = 0


# ----------------------------------------------------------------------
# Kernel pair: dead-reckoning, innovation gate, join-match gate
# ----------------------------------------------------------------------
#
# Every batch twin is the same elementwise IEEE expression as its scalar
# reference, evaluated on float64 -- which is what makes the pair
# bit-identical rather than merely close (the convention established by
# the transport and topology kernels).


def wrap_angle(a: float) -> float:
    """Map an angle to (-pi, pi] -- same formula as the batch twin."""
    return (a + math.pi) % TWO_PI - math.pi


def wrap_angle_batch(a: np.ndarray) -> np.ndarray:
    return (a + math.pi) % TWO_PI - math.pi


def advance_tracks_reference(
    x: Sequence[float],
    y: Sequence[float],
    vx: Sequence[float],
    vy: Sequence[float],
    theta: Sequence[float],
    omega: Sequence[float],
) -> Tuple[List[float], List[float], List[float]]:
    """Dead-reckon every track one epoch: ``p + v``, wrapped ``theta + omega``."""
    nx = [x[i] + vx[i] for i in range(len(x))]
    ny = [y[i] + vy[i] for i in range(len(y))]
    nt = [wrap_angle(theta[i] + omega[i]) for i in range(len(theta))]
    return nx, ny, nt


def advance_tracks_batch(
    x: np.ndarray,
    y: np.ndarray,
    vx: np.ndarray,
    vy: np.ndarray,
    theta: np.ndarray,
    omega: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    return x + vx, y + vy, wrap_angle_batch(theta + omega)


def track_accept_reference(
    ox: Sequence[float],
    oy: Sequence[float],
    otheta: Sequence[float],
    olevel: Sequence[float],
    px: Sequence[float],
    py: Sequence[float],
    ptheta: Sequence[float],
    plevel: Sequence[float],
    age: Sequence[int],
    tol_sq: float,
    angle_tol: float,
    heartbeat: int,
) -> Tuple[List[bool], List[bool]]:
    """Own-track innovation gate for observation/prediction pairs.

    Returns ``(accept, would_accept)``: ``accept`` is the suppression
    decision; ``would_accept`` ignores the heartbeat cap, so
    ``would_accept and not accept`` counts the forced heartbeats.
    """
    accept: List[bool] = []
    would: List[bool] = []
    for i in range(len(ox)):
        dx = ox[i] - px[i]
        dy = oy[i] - py[i]
        d2 = dx * dx + dy * dy
        dth = abs(wrap_angle(otheta[i] - ptheta[i]))
        w = bool(
            d2 <= tol_sq and dth <= angle_tol and olevel[i] == plevel[i]
        )
        would.append(w)
        accept.append(w and age[i] <= heartbeat)
    return accept, would


def track_accept_batch(
    ox: np.ndarray,
    oy: np.ndarray,
    otheta: np.ndarray,
    olevel: np.ndarray,
    px: np.ndarray,
    py: np.ndarray,
    ptheta: np.ndarray,
    plevel: np.ndarray,
    age: np.ndarray,
    tol_sq: float,
    angle_tol: float,
    heartbeat: int,
) -> Tuple[np.ndarray, np.ndarray]:
    dx = ox - px
    dy = oy - py
    d2 = dx * dx + dy * dy
    dth = np.abs(wrap_angle_batch(otheta - ptheta))
    would = (d2 <= tol_sq) & (dth <= angle_tol) & (olevel == plevel)
    return would & (age <= heartbeat), would


def join_accept_reference(
    jx: Sequence[float],
    jy: Sequence[float],
    jtheta: Sequence[float],
    jlevel: Sequence[float],
    tx: Sequence[float],
    ty: Sequence[float],
    ttheta: Sequence[float],
    tlevel: Sequence[float],
    tage: Sequence[int],
    tol_sq: float,
    angle_tol: float,
    heartbeat: int,
) -> Tuple[List[bool], List[bool]]:
    """Join gate: a joining observation is suppressed when ANY track's
    prediction covers it (same level, within both tolerances, age within
    the heartbeat cap).

    Returns ``(accept, covered)``: per-join suppression decisions and a
    per-*track* mask of which tracks covered at least one join -- the
    coverage-lease signal (a track covering nothing is going ghost).
    """
    out: List[bool] = []
    covered = [False] * len(tx)
    for j in range(len(jx)):
        hit = False
        for t in range(len(tx)):
            if tlevel[t] != jlevel[j] or tage[t] > heartbeat:
                continue
            dx = jx[j] - tx[t]
            dy = jy[j] - ty[t]
            if dx * dx + dy * dy > tol_sq:
                continue
            if abs(wrap_angle(jtheta[j] - ttheta[t])) > angle_tol:
                continue
            hit = True
            covered[t] = True
        out.append(hit)
    return out, covered


def join_accept_batch(
    jx: np.ndarray,
    jy: np.ndarray,
    jtheta: np.ndarray,
    jlevel: np.ndarray,
    tx: np.ndarray,
    ty: np.ndarray,
    ttheta: np.ndarray,
    tlevel: np.ndarray,
    tage: np.ndarray,
    tol_sq: float,
    angle_tol: float,
    heartbeat: int,
) -> Tuple[np.ndarray, np.ndarray]:
    if len(jx) == 0 or len(tx) == 0:
        return np.zeros(len(jx), dtype=bool), np.zeros(len(tx), dtype=bool)
    dx = jx[:, None] - tx[None, :]
    dy = jy[:, None] - ty[None, :]
    d2 = dx * dx + dy * dy
    dth = np.abs(wrap_angle_batch(jtheta[:, None] - ttheta[None, :]))
    ok = (
        (jlevel[:, None] == tlevel[None, :])
        & (tage[None, :] <= heartbeat)
        & (d2 <= tol_sq)
        & (dth <= angle_tol)
    )
    return ok.any(axis=1), ok.any(axis=0)


# ----------------------------------------------------------------------
# The mirrored bank
# ----------------------------------------------------------------------


def report_angle(report: IsolineReport) -> float:
    """The gradient-direction angle of a report (radians, (-pi, pi])."""
    return math.atan2(report.direction[1], report.direction[0])


class PredictorBank:
    """The mirrored track state plus the per-epoch decision pipeline.

    Epoch protocol (driven by :class:`ContinuousIsoMap`):

    1. :meth:`advance` -- dead-reckon every track one epoch;
    2. :meth:`decide` -- node-side suppression over the fresh reports;
       :meth:`decide_retractions` -- node-side retraction suppression
       over the leaving sources;
    3. :meth:`apply` -- fold the *delivered* reports and retractions
       back into the bank (LMS corrections, re-keys, creations,
       evictions): the only mutation both mirrors replay.
    4. :meth:`extrapolated` -- the sink cache: one report per track.
    """

    def __init__(self, config: PredictionConfig):
        self.config = config
        self.tracks: Dict[int, Track] = {}
        # Node-side coverage-lease counters (NOT mirrored state: they
        # only influence which retractions get *sent*; the sink folds
        # whatever is delivered).  key -> consecutive uncovered epochs.
        self._uncovered: Dict[int, int] = {}

    # -- state views ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.tracks)

    @property
    def max_age(self) -> int:
        """Staleness: the oldest extrapolated track, in epochs."""
        if not self.tracks:
            return 0
        return max(t.age for t in self.tracks.values())

    def _sorted_tracks(self) -> List[Track]:
        return [self.tracks[k] for k in sorted(self.tracks)]

    # -- 1. dead-reckoning ---------------------------------------------

    def advance(self) -> None:
        """Advance every track one epoch (prediction = new current state)."""
        tracks = self._sorted_tracks()
        if not tracks:
            return
        if self.config.batched:
            x = np.array([t.x for t in tracks])
            y = np.array([t.y for t in tracks])
            vx = np.array([t.vx for t in tracks])
            vy = np.array([t.vy for t in tracks])
            th = np.array([t.theta for t in tracks])
            om = np.array([t.omega for t in tracks])
            nx, ny, nt = advance_tracks_batch(x, y, vx, vy, th, om)
            nx, ny, nt = nx.tolist(), ny.tolist(), nt.tolist()
        else:
            nx, ny, nt = advance_tracks_reference(
                [t.x for t in tracks],
                [t.y for t in tracks],
                [t.vx for t in tracks],
                [t.vy for t in tracks],
                [t.theta for t in tracks],
                [t.omega for t in tracks],
            )
        for i, t in enumerate(tracks):
            t.x = nx[i]
            t.y = ny[i]
            t.theta = nt[i]
            t.age += 1

    # -- 2. node-side decisions ----------------------------------------

    def decide(
        self, current: Dict[int, IsolineReport]
    ) -> Tuple[List[IsolineReport], int, int]:
        """Suppression decisions over this epoch's fresh observations.

        Returns ``(to_send, predicted, heartbeats)``: the reports to
        transmit, how many were suppressed by prediction, and how many
        transmissions were forced purely by the heartbeat cap.
        """
        cfg = self.config
        tol_sq = cfg.position_tolerance * cfg.position_tolerance
        angle_tol = cfg.angle_tolerance_rad
        sources = sorted(current)
        owned = [s for s in sources if s in self.tracks]
        joins = [s for s in sources if s not in self.tracks]

        to_send: List[IsolineReport] = []
        predicted = 0
        heartbeats = 0
        # Tracks that covered an observation this epoch: an own report
        # (suppressed or not -- a sent one claims the track on delivery)
        # or a suppressed join.  Everything else is going ghost.
        covered_keys = set(owned)

        if owned:
            obs = [current[s] for s in owned]
            trk = [self.tracks[s] for s in owned]
            args = (
                [r.position[0] for r in obs],
                [r.position[1] for r in obs],
                [report_angle(r) for r in obs],
                [r.isolevel for r in obs],
                [t.x for t in trk],
                [t.y for t in trk],
                [t.theta for t in trk],
                [t.isolevel for t in trk],
                [t.age for t in trk],
            )
            if cfg.batched:
                accept, would = track_accept_batch(
                    *(np.asarray(a, dtype=float) for a in args[:8]),
                    np.asarray(args[8], dtype=np.int64),
                    tol_sq,
                    angle_tol,
                    cfg.heartbeat,
                )
                accept, would = accept.tolist(), would.tolist()
            else:
                accept, would = track_accept_reference(
                    *args, tol_sq, angle_tol, cfg.heartbeat
                )
            for i, s in enumerate(owned):
                if accept[i]:
                    predicted += 1
                else:
                    if would[i]:
                        heartbeats += 1
                    to_send.append(current[s])

        if joins:
            tracks = self._sorted_tracks()
            jobs = [current[s] for s in joins]
            jargs = (
                [r.position[0] for r in jobs],
                [r.position[1] for r in jobs],
                [report_angle(r) for r in jobs],
                [r.isolevel for r in jobs],
                [t.x for t in tracks],
                [t.y for t in tracks],
                [t.theta for t in tracks],
                [t.isolevel for t in tracks],
                [t.age for t in tracks],
            )
            if cfg.batched:
                jaccept, jcovered = join_accept_batch(
                    *(np.asarray(a, dtype=float) for a in jargs[:8]),
                    np.asarray(jargs[8], dtype=np.int64),
                    tol_sq,
                    angle_tol,
                    cfg.heartbeat,
                )
                jaccept, jcovered = jaccept.tolist(), jcovered.tolist()
            else:
                jaccept, jcovered = join_accept_reference(
                    *jargs, tol_sq, angle_tol, cfg.heartbeat
                )
            for i, s in enumerate(joins):
                if jaccept[i]:
                    predicted += 1
                else:
                    to_send.append(current[s])
            for i, t in enumerate(tracks):
                if jcovered[i]:
                    covered_keys.add(t.key)

        # Coverage-lease bookkeeping (node-side only).
        for k in self.tracks:
            if k in covered_keys:
                self._uncovered[k] = 0
            else:
                self._uncovered[k] = self._uncovered.get(k, 0) + 1

        # Deterministic transmit order: by source id (both branches
        # appended in sorted-subset order; merge keeps it reproducible).
        to_send.sort(key=lambda r: r.source)
        return to_send, predicted, heartbeats

    def decide_retractions(
        self,
        leaving: Sequence[Tuple[int, Tuple[float, float]]],
        current: Dict[int, IsolineReport],
    ) -> List[int]:
        """Which leaving sources must transmit a retraction.

        A retraction is sent only when the source owns a track that
        *died in place*: its prediction still sits within the position
        tolerance of the (stationary) node AND no current same-level
        member is covered by it.  The second clause is what lets a
        drifting isoline hand a track from a leaving node to its newly
        joined neighbour without a retract/re-report round trip: the
        neighbour's (suppressed) observation proves the sample is still
        live, so the track glides on until refreshed or aged out.  Only
        when the isoline genuinely left the area -- nobody nearby is on
        it any more -- does the cached sample get retracted.

        A second retraction source is the coverage lease: a track that
        covered no observation for ``lease`` consecutive epochs is a
        ghost gliding through empty space, and its last lease holder
        (the node it last covered) retracts it before it deposits more
        bogus samples in the sink map.
        """
        cfg = self.config
        tol_sq = cfg.position_tolerance * cfg.position_tolerance
        out: List[int] = []
        for source, pos in sorted(leaving):
            t = self.tracks.get(source)
            if t is None:
                continue  # nothing cached under this source
            dx = t.x - pos[0]
            dy = t.y - pos[1]
            if dx * dx + dy * dy > tol_sq:
                continue  # glided away: carrying live data elsewhere
            covered = False
            for s in sorted(current):
                r = current[s]
                if r.isolevel != t.isolevel:
                    continue
                cx = t.x - r.position[0]
                cy = t.y - r.position[1]
                if cx * cx + cy * cy <= tol_sq:
                    covered = True
                    break
            if not covered:
                out.append(source)
        seen = set(out)
        for key in sorted(self.tracks):
            if key in seen:
                continue
            if self._uncovered.get(key, 0) >= cfg.lease:
                out.append(key)
        out.sort()
        return out

    # -- 3. the mirrored fold ------------------------------------------

    def apply(
        self,
        delivered: Sequence[IsolineReport],
        delivered_retractions: Sequence[int],
    ) -> None:
        """Fold the delivered stream into the bank (both mirrors run this).

        Sequential claim bookkeeping, shared verbatim by the batched and
        reference modes: each delivered report corrects its own track,
        else adopts (re-keys) the nearest unclaimed same-level track
        within ``match_radius``, else creates a fresh zero-velocity
        track.  Then delivered retractions evict, and tracks older than
        the heartbeat cap are garbage-collected.
        """
        cfg = self.config
        radius_sq = cfg.effective_match_radius ** 2
        mu = cfg.learning_rate
        mu_w = cfg.angle_learning_rate
        claimed: set = set()

        for report in delivered:
            ox, oy = report.position
            otheta = report_angle(report)
            t = self.tracks.get(report.source)
            if t is None:
                t = self._adopt(report, radius_sq, claimed)
            if t is None:
                t = Track(
                    key=report.source,
                    isolevel=report.isolevel,
                    x=ox,
                    y=oy,
                    theta=otheta,
                )
                self.tracks[report.source] = t
            else:
                # LMS correction against the dead-reckoned prediction.
                t.vx = t.vx + mu * (ox - t.x)
                t.vy = t.vy + mu * (oy - t.y)
                speed = math.hypot(t.vx, t.vy)
                vmax = cfg.velocity_clamp * cfg.position_tolerance
                if speed > vmax:
                    t.vx *= vmax / speed
                    t.vy *= vmax / speed
                t.omega = t.omega + mu_w * wrap_angle(otheta - t.theta)
                t.x = ox
                t.y = oy
                t.theta = otheta
                t.isolevel = report.isolevel
            t.age = 0
            self._uncovered[t.key] = 0
            claimed.add(t.key)

        for source in delivered_retractions:
            self.tracks.pop(source, None)
            self._uncovered.pop(source, None)

        # Ghost eviction: nobody refreshed the track within the cap, so
        # both mirrors forget it (staleness stays bounded).
        for key in [
            k for k, t in self.tracks.items() if t.age > cfg.heartbeat
        ]:
            del self.tracks[key]
            self._uncovered.pop(key, None)

    def _adopt(
        self, report: IsolineReport, radius_sq: float, claimed: set
    ) -> Optional[Track]:
        """Re-key the nearest matching unclaimed track to ``report.source``.

        Deterministic: scanned in sorted key order, strict ``<`` keeps
        the first of equidistant candidates.
        """
        ox, oy = report.position
        best: Optional[Track] = None
        best_d2 = radius_sq
        for key in sorted(self.tracks):
            t = self.tracks[key]
            if key in claimed or t.isolevel != report.isolevel:
                continue
            dx = ox - t.x
            dy = oy - t.y
            d2 = dx * dx + dy * dy
            if d2 < best_d2 or (best is None and d2 == best_d2):
                best = t
                best_d2 = d2
        if best is None:
            return None
        del self.tracks[best.key]
        if best.key in self._uncovered:
            self._uncovered[report.source] = self._uncovered.pop(best.key)
        best.key = report.source
        self.tracks[report.source] = best
        return best

    # -- 4. the sink cache ---------------------------------------------

    def extrapolated(self, bounds: BoundingBox) -> Dict[int, IsolineReport]:
        """The mirrored sink cache: one report per track, key-sorted.

        Dead-reckoned positions are clamped into ``bounds`` (a gliding
        track may momentarily overshoot the field edge) and directions
        rebuilt from the track angle, so every entry is a valid
        :class:`IsolineReport` for the reconstructor and the wire codec.
        """
        out: Dict[int, IsolineReport] = {}
        for key in sorted(self.tracks):
            t = self.tracks[key]
            x = min(max(t.x, bounds.xmin), bounds.xmax)
            y = min(max(t.y, bounds.ymin), bounds.ymax)
            out[key] = IsolineReport(
                isolevel=t.isolevel,
                position=(x, y),
                direction=(math.cos(t.theta), math.sin(t.theta)),
                source=key,
            )
        return out
