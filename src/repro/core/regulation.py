"""Boundary regulation: Rules 1 and 2 (Section 3.4, Fig. 8e).

After merging the inner parts, the region boundary alternates between
type-1 chords (each perpendicular to one report's gradient) and type-2
jogs along Voronoi cell borders.  The jogs create pinnacles (spikes
pointing out of the region) and concaves (notches into it).  The paper's
two rules both resolve to the same geometric rewrite:

    where a type-1 chord of cell A meets a type-2 jog that leads to the
    type-1 chord of the adjacent cell B, prolong both chords; if they
    intersect nearby, replace the jog with the intersection vertex.

Rule 1 applies when the internal angle at the junction is reflex
(180-270 degrees): the pinnacle outside the prolonged chord is cut away.
Rule 2 applies when the internal angle is 90-180 degrees: the concave
inside it is filled.  Junctions whose jog deviates by 90 degrees or more
are left alone (the rules' angle windows exclude them), as are junctions
where the prolonged chords do not meet within the neighbourhood of the
two cells.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.core.reports import IsolineReport
from repro.geometry import Line, Vec, cross, dist, dot, intersect_lines, normalize, sub
from repro.geometry.polyline import TYPE1, TYPE2, BoundarySegment


def regulate_loops(
    loops: Sequence[List[BoundarySegment]],
    reports: Sequence[IsolineReport],
) -> Tuple[List[List[BoundarySegment]], Dict[str, int]]:
    """Apply Rules 1 and 2 to every loop; return new loops and rule counts."""
    cut_lines = {
        i: _cut_line(r.position, r.direction) for i, r in enumerate(reports)
    }
    stats = {"rule1": 0, "rule2": 0}
    out: List[List[BoundarySegment]] = []
    for loop in loops:
        out.append(_regulate_loop(list(loop), cut_lines, reports, stats))
    return out, stats


def _cut_line(position: Vec, direction: Vec) -> Line:
    """The type-1 line of a report: through its position, normal to ``d``."""
    n = normalize(direction)
    return Line(n, dot(n, position))


def _regulate_loop(
    loop: List[BoundarySegment],
    cut_lines: Dict[int, Line],
    reports: Sequence[IsolineReport],
    stats: Dict[str, int],
) -> List[BoundarySegment]:
    """One regulation pass over a cyclic loop.

    Scans for [type-1 of A, type-2 between A and B, type-1 of B] triples
    and applies the corner rewrite greedily without overlapping rewrites.
    """
    n = len(loop)
    if n < 3:
        return loop

    consumed = [False] * n
    # replacement[i] = the two segments replacing loop[i:i+3] (cyclically).
    replacements: Dict[int, Tuple[BoundarySegment, BoundarySegment]] = {}

    for i in range(n):
        j = (i + 1) % n
        k = (i + 2) % n
        if consumed[i] or consumed[j] or consumed[k]:
            continue
        s1, t, s2 = loop[i], loop[j], loop[k]
        rewrite = _try_rewrite(s1, t, s2, cut_lines, reports)
        if rewrite is None:
            continue
        new1, new2, rule = rewrite
        replacements[i] = (new1, new2)
        consumed[i] = consumed[j] = consumed[k] = True
        stats[rule] += 1

    if not replacements:
        return loop

    out: List[BoundarySegment] = []
    i = 0
    emitted = 0
    # Walk the cycle once, emitting either replacements or originals.
    start = min(replacements)  # begin at a rewrite so wrap-around is clean
    idx = start
    while emitted < n:
        if idx in replacements:
            out.extend(replacements[idx])
            emitted += 3
            idx = (idx + 3) % n
        else:
            out.append(loop[idx])
            emitted += 1
            idx = (idx + 1) % n
    return out


def _try_rewrite(
    s1: BoundarySegment,
    t: BoundarySegment,
    s2: BoundarySegment,
    cut_lines: Dict[int, Line],
    reports: Sequence[IsolineReport],
):
    """Attempt the corner rewrite on one [s1, t, s2] triple.

    Returns ``(new_s1, new_s2, rule_name)`` or ``None`` when the pattern or
    the rules' conditions do not hold.
    """
    if s1.kind != TYPE1 or t.kind != TYPE2 or s2.kind != TYPE1:
        return None
    a_cell = s1.cell
    b_cell = s2.cell
    if a_cell == b_cell:
        return None
    # The jog must be the border between exactly these two cells.
    if {t.cell, t.other} != {a_cell, b_cell}:
        return None

    rule = _classify_rule(s1, t, reports)
    if rule is None:
        return None

    la = cut_lines.get(a_cell)
    lb = cut_lines.get(b_cell)
    if la is None or lb is None:
        return None
    x = intersect_lines(la, lb)
    if x is None:
        return None

    # The intersection must lie forward of s1 and backward of s2 so both
    # replacement segments run in the loop direction...
    d1 = sub(s1.b, s1.a)
    d2 = sub(s2.b, s2.a)
    if dot(sub(x, s1.a), d1) <= 1e-12 or dot(sub(s2.b, x), d2) <= 1e-12:
        return None
    # ...and within the neighbourhood of the junction: prolonging a chord
    # "into the adjacent Voronoi cell" never reaches farther than a couple
    # of local segment lengths.
    scale = s1.length + t.length + s2.length
    if dist(x, t.a) > 2.0 * scale:
        return None

    new1 = BoundarySegment(s1.a, x, TYPE1, cell=a_cell)
    new2 = BoundarySegment(x, s2.b, TYPE1, cell=b_cell)
    if new1.length < 1e-9 or new2.length < 1e-9:
        return None
    return new1, new2, rule


def _classify_rule(
    s1: BoundarySegment, t: BoundarySegment, reports: Sequence[IsolineReport]
):
    """Which rule (if any) applies at the s1 -> t junction.

    The internal angle is measured on the region side.  With the region on
    the left of the walking direction, a right turn into the jog is a
    reflex internal angle (pinnacle, Rule 1) and a left turn is a convex
    internal angle (concave notch, Rule 2); both rules require the jog to
    deviate from straight by less than 90 degrees.
    """
    d1 = sub(s1.b, s1.a)
    dt = sub(t.b, t.a)
    n1 = math.hypot(*d1)
    nt = math.hypot(*dt)
    if n1 < 1e-12 or nt < 1e-12:
        return None
    turn = math.atan2(cross(d1, dt), dot(d1, dt))  # signed, (-pi, pi]
    if abs(turn) >= math.pi / 2 or abs(turn) < 1e-9:
        return None  # outside both rules' angle windows, or straight

    # Region side of s1.  A type-1 segment lies ON its report's cut line,
    # and the region locally is the inner half ``(x - p) . d <= 0``, i.e.
    # the side the descent direction points AWAY from.  So the region is
    # on the left of the walking direction iff the left normal opposes d.
    if not 0 <= s1.cell < len(reports):
        return None
    d = reports[s1.cell].direction
    left = (-d1[1] / n1, d1[0] / n1)
    v = left[0] * d[0] + left[1] * d[1]
    if abs(v) < 1e-12:
        return None
    region_on_left = v < 0

    # turn > 0 is a left turn in world coordinates; flip if the region is
    # on the right so the sign means "turn toward the region".
    toward_region = turn if region_on_left else -turn
    if toward_region > 0:
        # The jog bends into the region: internal angle in (90, 180),
        # a concave notch -- Rule 2 fills it.
        return "rule2"
    # The jog bends away from the region: internal angle in (180, 270),
    # a pinnacle -- Rule 1 cuts it.
    return "rule1"
