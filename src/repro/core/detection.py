"""Distributed isoline-node detection (Definition 3.1).

A node ``p`` with value ``v_p`` appoints itself an isoline node of
isolevel ``v_i`` iff

1. ``v_p`` lies in the border region ``[v_i - eps, v_i + eps]``, and
2. some neighbour ``q`` straddles the isolevel: ``v_p < v_i < v_q`` or
   ``v_q < v_i < v_p``.

Both checks are local.  Condition 1 costs a handful of comparisons per
queried isolevel; condition 2 requires the neighbours' values, which the
candidate obtains with the same local probe that later feeds the gradient
regression -- so the probe's traffic is charged here, once, and its
replies are returned for reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.query import ContourQuery
from repro.core.wire import BYTES_PER_PARAM, LOCAL_QUERY_BYTES, LOCAL_REPLY_BYTES
from repro.geometry import Vec
from repro.network import CostAccountant, SensorNetwork

#: Ops for testing one value against one isolevel's border region.
OPS_PER_LEVEL_CHECK = 2

#: Ops for testing whether one neighbour straddles the isolevel.
OPS_PER_STRADDLE_CHECK = 2


@dataclass
class DetectionResult:
    """Outcome of the distributed detection phase.

    Attributes:
        isoline_nodes: node id -> matched isolevel.
        neighborhood_data: node id -> the (position, value) tuples the
            candidate collected from its k-hop neighbourhood; reused by the
            gradient-estimation phase so the probe traffic is only paid
            once.
        candidates: nodes that passed the border-region check (condition 1)
            regardless of condition 2 -- exposed for diagnostics and tests.
    """

    isoline_nodes: Dict[int, float] = field(default_factory=dict)
    neighborhood_data: Dict[int, List[Tuple[Vec, float]]] = field(
        default_factory=dict
    )
    candidates: List[int] = field(default_factory=list)


def detect_isoline_nodes(
    network: SensorNetwork,
    query: ContourQuery,
    costs: CostAccountant,
) -> DetectionResult:
    """Distributed isoline-node self-appointment.

    ``query.detection_mode`` selects the policy: ``"border"`` runs the
    paper's Definition 3.1 (below); ``"straddle"`` runs the adaptive
    extension (:func:`detect_isoline_nodes_straddle`).

    Traffic charged here: one local probe broadcast per candidate (a
    single transmission heard by the alive neighbours) and one unicast
    (value, x, y) reply from each sensing-capable k-hop neighbour.
    Computation charged: the border-region comparisons at every node and
    the straddle checks at candidates.
    """
    if query.detection_mode == "straddle":
        return detect_isoline_nodes_straddle(network, query, costs)
    result = DetectionResult()
    levels = query.isolevels

    for node in network.nodes:
        if not node.can_sense or node.level is None:
            continue
        # Condition 1: the node's own value against each border region.
        costs.charge_ops(node.node_id, OPS_PER_LEVEL_CHECK * len(levels))
        isolevel = query.matching_isolevel(node.value)
        if isolevel is None:
            continue
        result.candidates.append(node.node_id)

        # The candidate probes its neighbourhood: one broadcast, heard by
        # alive 1-hop neighbours; sensing-capable k-hop neighbours reply
        # with (value, x, y).  Multi-hop replies relay through the
        # neighbourhood, charged per hop below for k == 1 (the default);
        # for k > 1 we conservatively charge k hops per reply.
        alive_nbrs = network.alive_neighbors(node.node_id)
        costs.charge_local_broadcast(node.node_id, alive_nbrs, LOCAL_QUERY_BYTES)
        responders = network.k_hop_sensing_neighbors(node.node_id, query.k_hop)
        one_hop_ids = (
            frozenset(network.neighbor_lists[node.node_id])
            if query.k_hop > 1
            else None
        )
        data: List[Tuple[Vec, float]] = []
        for j in responders:
            hops = 1 if one_hop_ids is None or j in one_hop_ids else query.k_hop
            # A reply travelling h hops is transmitted and received h
            # times.  The relaying neighbours' identities are routing
            # details we do not simulate at this granularity, so the
            # extra hops are charged to the endpoints as proxies -- the
            # network-wide byte totals stay exact.
            costs.charge_tx(j, LOCAL_REPLY_BYTES * hops)
            costs.charge_rx(node.node_id, LOCAL_REPLY_BYTES * hops)
            data.append((network.nodes[j].app_position, network.nodes[j].value))
        result.neighborhood_data[node.node_id] = data

        # Condition 2: some 1-hop neighbour straddles the isolevel.
        straddles = False
        one_hop = set(network.sensing_neighbors(node.node_id))
        costs.charge_ops(node.node_id, OPS_PER_STRADDLE_CHECK * len(one_hop))
        for j in one_hop:
            vq = network.nodes[j].value
            vp = node.value
            if (vp < isolevel < vq) or (vq < isolevel < vp):
                straddles = True
                break
        if straddles:
            result.isoline_nodes[node.node_id] = isolevel
    return result


def detect_isoline_nodes_straddle(
    network: SensorNetwork,
    query: ContourQuery,
    costs: CostAccountant,
) -> DetectionResult:
    """Adaptive straddle-based detection (this reproduction's extension).

    Definition 3.1's condition 1 (a fixed value border of half-width
    ``epsilon``) starves sparse deployments on flat terrain: almost no
    node's reading falls within +-0.05 T of an isolevel when readings are
    spaced far apart in value.  The straddle policy drops the fixed
    border and instead appoints, for every radio edge whose endpoint
    values straddle an isolevel, the endpoint CLOSER in value to that
    level (ties break to the lower node id).  The isoline still passes
    between the two nodes, so the appointed node is within one radio
    range of it -- the same spatial guarantee condition 2 provides --
    while the selection adapts automatically to the local slope.

    Costs: every sensing node broadcasts its 2-byte value once (replacing
    the per-candidate probe of condition 1's survivors); appointed nodes
    then run the ordinary (value, x, y) neighbourhood probe to feed the
    gradient regression.
    """
    result = DetectionResult()
    levels = query.isolevels

    # Phase 1: one value broadcast per sensing, routed node -- afterwards
    # every node knows its neighbours' readings.
    participants = [
        node for node in network.nodes if node.can_sense and node.level is not None
    ]
    for node in participants:
        alive_nbrs = network.alive_neighbors(node.node_id)
        costs.charge_local_broadcast(node.node_id, alive_nbrs, BYTES_PER_PARAM)

    # Phase 2: local straddle decisions.
    for node in participants:
        vp = node.value
        nbr_values = [
            (j, network.nodes[j].value)
            for j in network.sensing_neighbors(node.node_id)
        ]
        best_level = None
        best_gap = None
        costs.charge_ops(
            node.node_id, OPS_PER_STRADDLE_CHECK * max(1, len(nbr_values)) * len(levels)
        )
        for level in levels:
            for j, vq in nbr_values:
                if not ((vp < level < vq) or (vq < level < vp)):
                    continue
                gap_p = abs(vp - level)
                gap_q = abs(vq - level)
                closer = gap_p < gap_q or (gap_p == gap_q and node.node_id < j)
                if not closer:
                    continue
                if best_gap is None or gap_p < best_gap:
                    best_gap = gap_p
                    best_level = level
                break  # one straddling neighbour per level suffices
        if best_level is None:
            continue
        result.candidates.append(node.node_id)
        result.isoline_nodes[node.node_id] = best_level

    # Phase 3: appointed nodes probe for (value, x, y) tuples to feed the
    # regression, exactly as in border mode.
    for node_id in result.isoline_nodes:
        alive_nbrs = network.alive_neighbors(node_id)
        costs.charge_local_broadcast(node_id, alive_nbrs, LOCAL_QUERY_BYTES)
        responders = network.k_hop_sensing_neighbors(node_id, query.k_hop)
        data = []
        for j in responders:
            costs.charge_tx(j, LOCAL_REPLY_BYTES)
            costs.charge_rx(node_id, LOCAL_REPLY_BYTES)
            data.append((network.nodes[j].app_position, network.nodes[j].value))
        result.neighborhood_data[node_id] = data
    return result
