"""Energy model bridging counted work to Joules.

Implements Section 5.3 of the paper: a Mica2 mote with the CC1000
transceiver (38.4 kbps, 42 mW transmit at 0 dBm, 29 mW receive) and an
ATmega128 microcontroller (33 mW active, 242 MIPS/W).  Per-node energy is
a pure function of the :class:`repro.network.CostAccountant` counters.
"""

from repro.energy.mica2 import Mica2Model
from repro.energy.accounting import EnergyReport, energy_from_costs

__all__ = ["Mica2Model", "EnergyReport", "energy_from_costs"]
