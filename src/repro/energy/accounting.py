"""Converting counted costs into per-node energy (Fig. 16)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.energy.mica2 import Mica2Model
from repro.network.accounting import CostAccountant


@dataclass
class EnergyReport:
    """Per-node energy consumption of one protocol run, in Joules.

    Attributes:
        radio_j: per-node radio energy (tx + rx).
        cpu_j: per-node CPU energy for the counted arithmetic ops.
    """

    radio_j: np.ndarray
    cpu_j: np.ndarray

    @property
    def total_j(self) -> np.ndarray:
        return self.radio_j + self.cpu_j

    @property
    def per_node_mean_j(self) -> float:
        """Mean per-node energy -- the y axis of Fig. 16."""
        return float(self.total_j.mean())

    @property
    def per_node_max_j(self) -> float:
        """Worst-case node energy (hotspot nodes near the sink)."""
        return float(self.total_j.max())

    @property
    def network_total_j(self) -> float:
        return float(self.total_j.sum())

    def per_node_mean_mj(self) -> float:
        """Mean per-node energy in millijoules (the paper's plotting unit)."""
        return self.per_node_mean_j * 1e3


def energy_from_costs(
    costs: CostAccountant, model: Optional[Mica2Model] = None
) -> EnergyReport:
    """Map a cost accountant's counters to Joules under the Mica2 model.

    The transformation is exactly the paper's: transmitted bytes at the
    tx energy/byte, received bytes at the rx energy/byte, and arithmetic
    operations at the CPU energy/op.  Idle/sleep power is excluded --
    both the paper and this reproduction compare the *marginal* cost of
    contour mapping.
    """
    m = model if model is not None else Mica2Model()
    radio = (
        costs.tx_bytes.astype(float) * m.tx_joules_per_byte
        + costs.rx_bytes.astype(float) * m.rx_joules_per_byte
    )
    cpu = costs.ops.astype(float) * m.joules_per_op
    return EnergyReport(radio_j=radio, cpu_j=cpu)
