"""Mica2 hardware constants and per-unit energy costs.

All numbers are the ones the paper quotes (Section 5.3, citing [9], [19],
[24]): the CC1000 radio moves 38.4 kbit/s and draws 42 mW transmitting at
0 dBm and 29 mW receiving; the ATmega128 CPU delivers 242 MIPS per watt.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Mica2Model:
    """Energy cost model of a Mica2 mote.

    Attributes:
        data_rate_bps: radio throughput in bits per second.
        tx_power_w: transmit power draw in watts.
        rx_power_w: receive power draw in watts.
        mips_per_watt: CPU efficiency (instructions per second per watt).
        instructions_per_op: how many CPU instructions one counted
            "arithmetic operation" costs.  The paper normalises
            computational intensity "with the operational overhead of each
            arithmetic operation"; on the 8-bit ATmega128 a floating-point
            multiply-add spans several soft-float instructions, and this
            knob makes that explicit.  The default of 16 is the order of
            magnitude of avr-libc soft-float routines; experiment shapes do
            not depend on it.
    """

    data_rate_bps: float = 38_400.0
    tx_power_w: float = 42e-3
    rx_power_w: float = 29e-3
    mips_per_watt: float = 242e6
    instructions_per_op: float = 16.0

    @property
    def tx_joules_per_byte(self) -> float:
        """Energy to push one byte through the transmitter.

        8 bits / 38.4 kbps = 208.3 us on air at 42 mW = 8.75 uJ.
        """
        return self.tx_power_w * 8.0 / self.data_rate_bps

    @property
    def rx_joules_per_byte(self) -> float:
        """Energy to receive one byte (6.04 uJ with the defaults)."""
        return self.rx_power_w * 8.0 / self.data_rate_bps

    @property
    def joules_per_instruction(self) -> float:
        """Energy per CPU instruction (~4.13 nJ at 242 MIPS/W)."""
        return 1.0 / self.mips_per_watt

    @property
    def joules_per_op(self) -> float:
        """Energy per counted arithmetic operation."""
        return self.joules_per_instruction * self.instructions_per_op
