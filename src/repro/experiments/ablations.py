"""Ablations of Iso-Map's design choices.

Each function isolates one mechanism DESIGN.md calls out and measures
what it buys:

- :func:`run_ablation_regulation` -- Rules 1-2 boundary regulation.
- :func:`run_ablation_gradient` -- carrying the gradient direction ``d``
  in reports at all (the paper's Fig. 4 motivates it; here we quantify
  it by replacing ``d`` with uninformative directions).
- :func:`run_ablation_filtering_placement` -- filtering along the path
  vs the same filter applied only at the sink (equal information at the
  sink, different bytes in transit).
- :func:`run_ablation_regression` -- linear vs quadratic local models.
- :func:`run_ablation_localization` -- sensitivity to position error
  (the paper assumes GPS or a localisation service; real ones err).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.core.contour_map import build_contour_map
from repro.core.filtering import InNetworkFilter
from repro.core.reports import IsolineReport
from repro.experiments.common import (
    ACCURACY_RASTER,
    ExperimentResult,
    PAPER_FILTER,
    PAPER_QUERY,
    default_levels,
    harbor_network,
    run_isomap,
)
from repro.field import make_harbor_field
from repro.metrics import mapping_accuracy
from repro.metrics.gradient_error import gradient_errors, summarize_errors
from repro.metrics.hausdorff import mean_isoline_hausdorff
from repro.network import CostAccountant


def run_ablation_regulation(
    n: int = 2500, seeds: Sequence[int] = (1, 2), grid: int = 120
) -> ExperimentResult:
    """Boundary regulation on/off: effect on isoline irregularity."""
    field = make_harbor_field()
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="ablation_regulation",
        title="Rule-1/2 regulation: isoline Hausdorff distance",
        columns=["regulation", "hausdorff", "rules_applied"],
        notes=f"n={n}; distance in field units, mean over levels and seeds",
    )
    for regulate in (True, False):
        dists: List[float] = []
        applied = 0
        for seed in seeds:
            net = harbor_network(n, "random", seed=seed, field=field)
            iso = IsoMapProtocol(PAPER_QUERY, PAPER_FILTER, regulate=regulate).run(net)
            d = mean_isoline_hausdorff(field, iso.contour_map, levels, grid=grid)
            if d is not None:
                dists.append(d)
            applied += sum(
                sum(r.regulation_stats.values())
                for r in iso.contour_map.regions.values()
            )
        result.add_row(
            regulation="on" if regulate else "off",
            hausdorff=sum(dists) / len(dists),
            rules_applied=applied / len(seeds),
        )
    return result


def run_ablation_gradient(
    n: int = 2500, seeds: Sequence[int] = (1, 2), raster: int = ACCURACY_RASTER
) -> ExperimentResult:
    """What the reported gradient direction buys.

    Rebuilds the map from the same delivered reports with (a) the real
    directions, (b) directions estimated at the SINK from the two nearest
    same-level report positions (what a position-only protocol could do),
    and (c) random directions (the information floor).
    """
    field = make_harbor_field()
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="ablation_gradient",
        title="value of the gradient direction in reports",
        columns=["directions", "accuracy"],
        notes=f"n={n}; same delivered reports, directions substituted",
    )
    acc = {"reported": [], "sink_estimated": [], "random": []}
    for seed in seeds:
        net = harbor_network(n, "random", seed=seed, field=field)
        iso = run_isomap(net)
        reports = iso.delivered_reports
        sink_value = net.nodes[net.sink_index].value

        def rebuild(new_reports):
            cmap = build_contour_map(
                new_reports, levels, net.bounds, sink_value=sink_value
            )
            return mapping_accuracy(field, cmap, levels, raster, raster)

        acc["reported"].append(rebuild(reports))
        acc["sink_estimated"].append(rebuild(_sink_estimated(reports)))
        acc["random"].append(rebuild(_randomized(reports, random.Random(seed))))
    for key in ("reported", "sink_estimated", "random"):
        result.add_row(directions=key, accuracy=sum(acc[key]) / len(seeds))
    return result


def _sink_estimated(reports: Sequence[IsolineReport]) -> List[IsolineReport]:
    """Directions reconstructed at the sink from report positions only.

    For each report, the local isoline trend is estimated as the chord
    through its two nearest same-level peers; the direction is the chord
    normal, sign-disambiguated by... nothing -- position-only data cannot
    orient inside vs outside, which is exactly the Fig. 4 ambiguity.  We
    give it the benefit of a coin flip seeded deterministically.
    """
    out: List[IsolineReport] = []
    rng = random.Random(1234)
    by_level: dict = {}
    for r in reports:
        by_level.setdefault(r.isolevel, []).append(r)
    for r in reports:
        peers = [p for p in by_level[r.isolevel] if p is not r]
        if len(peers) < 2:
            out.append(r)
            continue
        peers.sort(key=lambda p: (p.position[0] - r.position[0]) ** 2
                   + (p.position[1] - r.position[1]) ** 2)
        a, b = peers[0].position, peers[1].position
        tx, ty = b[0] - a[0], b[1] - a[1]
        norm = math.hypot(tx, ty)
        if norm < 1e-9:
            out.append(r)
            continue
        nx, ny = -ty / norm, tx / norm
        if rng.random() < 0.5:
            nx, ny = -nx, -ny
        out.append(IsolineReport(r.isolevel, r.position, (nx, ny), r.source))
    return out


def _randomized(
    reports: Sequence[IsolineReport], rng: random.Random
) -> List[IsolineReport]:
    out = []
    for r in reports:
        theta = rng.uniform(0, 2 * math.pi)
        out.append(
            IsolineReport(
                r.isolevel, r.position, (math.cos(theta), math.sin(theta)), r.source
            )
        )
    return out


def run_ablation_filtering_placement(
    n: int = 2500, seeds: Sequence[int] = (1, 2)
) -> ExperimentResult:
    """In-network filtering vs the same filter applied only at the sink.

    Both end with the same filtered report set; the difference is the
    bytes spent carrying later-dropped reports across the tree -- the
    reason the paper filters in-network.
    """
    field = make_harbor_field()
    result = ExperimentResult(
        experiment_id="ablation_filter_placement",
        title="in-network vs sink-side filtering",
        columns=["placement", "traffic_kb", "final_reports"],
        notes=f"n={n}; identical thresholds (30 deg, 4)",
    )
    in_net = {"traffic": [], "reports": []}
    at_sink = {"traffic": [], "reports": []}
    for seed in seeds:
        net = harbor_network(n, "random", seed=seed, field=field)
        filtered = run_isomap(net, filter_config=PAPER_FILTER)
        in_net["traffic"].append(filtered.costs.total_traffic_kb())
        in_net["reports"].append(len(filtered.delivered_reports))

        unfiltered = run_isomap(net, filter_config=FilterConfig.disabled())
        sink_filter = InNetworkFilter(PAPER_FILTER)
        sink_costs = CostAccountant(net.n_nodes)
        survivors, _ = sink_filter.offer_all(
            list(unfiltered.delivered_reports), net.sink_index, sink_costs
        )
        at_sink["traffic"].append(unfiltered.costs.total_traffic_kb())
        at_sink["reports"].append(len(survivors))
    k = len(seeds)
    result.add_row(
        placement="in-network",
        traffic_kb=sum(in_net["traffic"]) / k,
        final_reports=sum(in_net["reports"]) / k,
    )
    result.add_row(
        placement="sink-side",
        traffic_kb=sum(at_sink["traffic"]) / k,
        final_reports=sum(at_sink["reports"]) / k,
    )
    return result


def run_ablation_regression(
    n: int = 2500, seeds: Sequence[int] = (1, 2), sensing_noise: float = 0.05
) -> ExperimentResult:
    """Linear vs quadratic local models: gradient error and CPU cost."""
    field = make_harbor_field()
    result = ExperimentResult(
        experiment_id="ablation_regression",
        title="linear vs quadratic gradient regression",
        columns=["model", "mean_err_deg", "isoline_node_ops"],
        notes=f"n={n}, sensing noise {sensing_noise} m, k-hop=2 neighbourhoods",
    )
    query = ContourQuery(
        PAPER_QUERY.value_lo, PAPER_QUERY.value_hi, PAPER_QUERY.granularity, k_hop=2
    )
    for model in ("linear", "quadratic"):
        errors: List[float] = []
        ops: List[float] = []
        for seed in seeds:
            net = harbor_network(
                n, "random", seed=seed, field=field, sensing_noise=sensing_noise
            )
            iso = IsoMapProtocol(query, PAPER_FILTER, regression=model).run(net)
            errors.extend(gradient_errors(field, iso.generated_reports))
            sources = [r.source for r in iso.generated_reports]
            if sources:
                ops.append(
                    float(sum(iso.costs.ops[s] for s in sources)) / len(sources)
                )
        stats = summarize_errors(errors)
        result.add_row(
            model=model,
            mean_err_deg=stats.mean_deg,
            isoline_node_ops=sum(ops) / len(ops),
        )
    return result


def run_ablation_localization(
    n: int = 2500,
    seeds: Sequence[int] = (1, 2),
    position_noise: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0),
    raster: int = ACCURACY_RASTER,
) -> ExperimentResult:
    """Map accuracy under position (localisation) error on reports.

    The paper obtains positions "from attached localization devices such
    as a GPS receiver or by one of existing algorithms" -- all of which
    err.  Positions are perturbed at the REPORT level (sensing and
    detection still happen at the true spot; only the advertised
    coordinate is wrong), matching how localisation error actually enters.
    """
    field = make_harbor_field()
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="ablation_localization",
        title="mapping accuracy vs position error",
        columns=["position_noise", "accuracy"],
        notes=f"n={n}; Gaussian noise (field units) on report positions",
    )
    for sigma in position_noise:
        accs: List[float] = []
        for seed in seeds:
            net = harbor_network(n, "random", seed=seed, field=field)
            iso = run_isomap(net)
            rng = random.Random(seed)
            noisy = []
            for r in iso.delivered_reports:
                p = (
                    r.position[0] + rng.gauss(0, sigma),
                    r.position[1] + rng.gauss(0, sigma),
                )
                p = net.bounds.clamp(p)
                noisy.append(IsolineReport(r.isolevel, p, r.direction, r.source))
            cmap = build_contour_map(
                noisy, levels, net.bounds,
                sink_value=net.nodes[net.sink_index].value,
            )
            accs.append(mapping_accuracy(field, cmap, levels, raster, raster))
        result.add_row(position_noise=sigma, accuracy=sum(accs) / len(seeds))
    return result


def run_ablation_isoline_agg(
    n: int = 2500, seeds: Sequence[int] = (1, 2), raster: int = ACCURACY_RASTER
) -> ExperimentResult:
    """Iso-Map vs isoline aggregation [22]: the gradient's contribution
    measured against the closest related-work design.

    Both protocols restrict reporting to isoline nodes (same O(sqrt(n))
    traffic regime); only Iso-Map adds the locally-regressed gradient
    direction.  The accuracy gap is what that 2-byte parameter buys over
    the best position-only recovery.
    """
    from repro.baselines import IsolineAggregationProtocol

    field = make_harbor_field()
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="ablation_isoline_agg",
        title="Iso-Map vs isoline aggregation (no gradients)",
        columns=["protocol", "reports", "traffic_kb", "accuracy"],
        notes=f"n={n}; both restrict reporting to isoline nodes",
    )
    per = {
        "iso-map": {"r": [], "t": [], "a": []},
        "isoline-agg": {"r": [], "t": [], "a": []},
    }
    for seed in seeds:
        net = harbor_network(n, "random", seed=seed, field=field)
        iso = run_isomap(net)
        per["iso-map"]["r"].append(len(iso.delivered_reports))
        per["iso-map"]["t"].append(iso.costs.total_traffic_kb())
        per["iso-map"]["a"].append(
            mapping_accuracy(field, iso.contour_map, levels, raster, raster)
        )
        agg = IsolineAggregationProtocol(PAPER_QUERY).run(net)
        per["isoline-agg"]["r"].append(agg.reports_delivered)
        per["isoline-agg"]["t"].append(agg.costs.total_traffic_kb())
        per["isoline-agg"]["a"].append(
            mapping_accuracy(field, agg.band_map, levels, raster, raster)
        )
    k = len(seeds)
    for name in ("iso-map", "isoline-agg"):
        result.add_row(
            protocol=name,
            reports=sum(per[name]["r"]) / k,
            traffic_kb=sum(per[name]["t"]) / k,
            accuracy=sum(per[name]["a"]) / k,
        )
    return result


def run_ablation_detection_mode(
    densities: Sequence[float] = (0.16, 0.36, 1.0, 4.0),
    seeds: Sequence[int] = (1, 2),
    raster: int = ACCURACY_RASTER,
) -> ExperimentResult:
    """Definition 3.1's fixed border vs the adaptive straddle policy.

    The fixed epsilon border starves sparse deployments (the Fig. 10/11a
    deviation); straddle-based appointment puts an isoline node on every
    radio edge crossing an isoline, adapting to the local slope.  The
    sweep measures what that buys at low density and what the extra value
    broadcasts cost at high density.
    """
    from repro.experiments.common import radio_range_for_density

    field = make_harbor_field()
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="ablation_detection_mode",
        title="border (Def. 3.1) vs straddle detection across densities",
        columns=[
            "density",
            "acc_border",
            "acc_straddle",
            "traffic_border_kb",
            "traffic_straddle_kb",
        ],
        notes="straddle = this reproduction's adaptive extension",
    )
    for density in densities:
        n = max(9, round(density * 2500))
        r = radio_range_for_density(density)
        per = {"ab": [], "as": [], "tb": [], "ts": []}
        for seed in seeds:
            net = harbor_network(n, "random", seed=seed, field=field, radio_range=r)
            for mode, acc_key, traffic_key in (
                ("border", "ab", "tb"),
                ("straddle", "as", "ts"),
            ):
                query = ContourQuery(
                    PAPER_QUERY.value_lo,
                    PAPER_QUERY.value_hi,
                    PAPER_QUERY.granularity,
                    detection_mode=mode,
                )
                iso = IsoMapProtocol(query, PAPER_FILTER).run(net)
                per[acc_key].append(
                    mapping_accuracy(field, iso.contour_map, levels, raster, raster)
                )
                per[traffic_key].append(iso.costs.total_traffic_kb())
        k = len(seeds)
        result.add_row(
            density=density,
            acc_border=sum(per["ab"]) / k,
            acc_straddle=sum(per["as"]) / k,
            traffic_border_kb=sum(per["tb"]) / k,
            traffic_straddle_kb=sum(per["ts"]) / k,
        )
    return result
