"""Continuous monitoring: incremental vs full-rebuild sink, per epoch.

The continuous extension already showed delta *traffic* collapsing to
the churn rate (``ext_continuous``).  This sweep adds the sink side of
the same story: with the incremental reconstructor
(:class:`~repro.core.contour_map.SinkReconstructor`) the per-epoch sink
CPU also collapses to the churn rate, because only Voronoi cells whose
neighborhoods saw a changed report are recomputed.  Both sinks build
*bit-identical* maps (the reconstructor's contract, pinned by the
differential tests), so the comparison is purely about cost.

Two workloads, each an epoch timeline over the harbor field:

- ``steady_drift``: a silt bump creeps along the channel a little each
  epoch -- localized churn every epoch, the steady-state tide shape;
- ``local_storm``: calm epochs, then one epoch deposits a large mound
  at once -- a high-dirty-fraction epoch that trips the incremental
  sink's full-rebuild fallback, then a new steady state.

Per epoch the table reports delta vs snapshot traffic, incremental vs
from-scratch sink CPU on the *same* cached reports, the dirty fraction
the locality query certified, and map accuracy against the current
field.  Runs through the parallel sweep runner (``--jobs``/``--cache``).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence

from repro.core import FilterConfig, IsoMapProtocol
from repro.core.continuous import ContinuousIsoMap
from repro.core.contour_map import build_contour_map
from repro.experiments.common import (
    PAPER_QUERY,
    ExperimentResult,
    default_levels,
    harbor_network,
)
from repro.experiments.runner import (
    grid_points,
    group_by_config,
    run_sweep,
    seed_mean,
)
from repro.field import CompositeField, GaussianBumpField, make_harbor_field
from repro.metrics import mapping_accuracy

#: Epochs per timeline; the storm hits at ``EPOCHS // 2``.
EPOCHS = 6

WORKLOADS = ("steady_drift", "local_storm")


def _field_at(workload: str, epoch: int, epochs: int = EPOCHS):
    """The evolving harbor field for one workload at one epoch.

    The storm workload's event lands at ``epochs // 2``.
    """
    calm = make_harbor_field()
    if workload == "steady_drift":
        # A modest mound creeping along the channel: every epoch moves
        # it a little, so churn is localized but never zero.
        cx = 24.0 + 1.2 * epoch
        bump = GaussianBumpField(calm.bounds, 0.0, [(-1.5, (cx, 26.0), 3.0)])
        return CompositeField(calm.bounds, [calm, bump])
    if workload == "local_storm":
        if epoch < epochs // 2:
            return calm
        # One epoch deposits a large mound at once; it then persists.
        bump = GaussianBumpField(calm.bounds, 0.0, [(-3.0, (28.0, 26.0), 5.0)])
        return CompositeField(calm.bounds, [calm, bump])
    raise ValueError(f"unknown workload {workload!r}")


def continuous_point(
    workload: str,
    n: int,
    seed: int,
    epochs: int = EPOCHS,
    radio_range: float = 1.5,
    raster: int = 60,
) -> Dict[str, Any]:
    """One sweep point: a full epoch timeline on one deployment seed.

    Returns per-epoch keys ``e{i}.<metric>`` so the flat sweep runner
    can average them across seeds.
    """
    levels = default_levels()
    net = harbor_network(
        n,
        "random",
        seed=seed,
        radio_range=radio_range,
        field=_field_at(workload, 0, epochs),
    )
    monitor = ContinuousIsoMap(PAPER_QUERY)
    snapshot = IsoMapProtocol(PAPER_QUERY, FilterConfig.disabled())

    out: Dict[str, Any] = {}
    for epoch in range(epochs):
        field_now = _field_at(workload, epoch, epochs)
        net.resense(field_now)

        delta = monitor.epoch(net)
        recon = monitor.reconstructor
        # From-scratch sink cost on the SAME cached reports (what a
        # non-incremental sink would pay this epoch for the same map).
        sink_node = net.nodes[net.sink_index]
        t0 = time.perf_counter()
        build_contour_map(
            monitor.sink_reports,
            PAPER_QUERY.isolevels,
            net.bounds,
            sink_value=sink_node.value if sink_node.can_sense else None,
        )
        full_seconds = time.perf_counter() - t0
        snap = snapshot.run(net)

        p = f"e{epoch}."
        out[p + "delta_kb"] = delta.costs.total_traffic_kb()
        out[p + "snapshot_kb"] = snap.costs.total_traffic_kb()
        out[p + "sink_inc_ms"] = recon.last_seconds * 1000.0
        out[p + "sink_full_ms"] = full_seconds * 1000.0
        out[p + "dirty_fraction"] = recon.last_dirty_fraction()
        out[p + "cells_recomputed"] = float(recon.last_cells_recomputed)
        out[p + "full_rebuilds"] = float(recon.last_full_rebuilds)
        out[p + "accuracy"] = mapping_accuracy(
            field_now, delta.contour_map, levels, raster, raster
        )
    return out


def run_fig_continuous(
    seeds: Sequence[int] = (1,),
    n: int = 2500,
    epochs: int = EPOCHS,
    workloads: Sequence[str] = WORKLOADS,
    radio_range: float = 1.5,
    raster: int = 60,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Incremental vs full-rebuild sink across drift and storm timelines.

    Timing columns (``sink_inc_ms``/``sink_full_ms``) are wall-clock and
    therefore machine-dependent; everything else in the table is
    deterministic per seed.  Smaller ``n`` needs a larger
    ``radio_range`` to keep the deployment connected (density scaling,
    as in fig07's reduced runs).
    """
    configs = [
        {
            "workload": w,
            "n": n,
            "epochs": epochs,
            "radio_range": radio_range,
            "raster": raster,
        }
        for w in workloads
    ]
    results = run_sweep(
        grid_points(continuous_point, configs, list(seeds)), jobs, cache_dir
    )
    table = ExperimentResult(
        experiment_id="fig_continuous",
        title="incremental vs full-rebuild sink reconstruction, per epoch",
        columns=[
            "workload",
            "epoch",
            "delta_kb",
            "snapshot_kb",
            "sink_inc_ms",
            "sink_full_ms",
            "dirty_fraction",
            "cells_recomputed",
            "full_rebuilds",
            "accuracy",
        ],
        notes=(
            f"n={n}, seeds={list(seeds)}; storm hits at epoch {epochs // 2}; "
            "sink_*_ms are wall-clock (same reports, bit-identical maps); "
            "epoch 0 is the cold start (full build either way)"
        ),
    )
    for cfg, group in zip(configs, group_by_config(results, len(seeds))):
        for epoch in range(epochs):
            p = f"e{epoch}."
            table.add_row(
                workload=cfg["workload"],
                epoch=epoch,
                delta_kb=seed_mean(group, p + "delta_kb"),
                snapshot_kb=seed_mean(group, p + "snapshot_kb"),
                sink_inc_ms=seed_mean(group, p + "sink_inc_ms"),
                sink_full_ms=seed_mean(group, p + "sink_full_ms"),
                dirty_fraction=seed_mean(group, p + "dirty_fraction"),
                cells_recomputed=seed_mean(group, p + "cells_recomputed"),
                full_rebuilds=seed_mean(group, p + "full_rebuilds"),
                accuracy=seed_mean(group, p + "accuracy"),
            )
    return table
