"""Experiment harness: one module per paper table/figure.

Each module exposes a ``run_*`` function returning an
:class:`repro.experiments.common.ExperimentResult` whose rows are the
series the paper plots.  The ``benchmarks/`` harness calls these and
prints the tables; EXPERIMENTS.md records paper-vs-measured.

| Module | Paper result |
|---|---|
| :mod:`repro.experiments.fig07_gradient_error` | Fig. 7 |
| :mod:`repro.experiments.fig10_maps` | Fig. 10 (and Fig. 9's density contrast) |
| :mod:`repro.experiments.fig11_accuracy` | Fig. 11a / 11b |
| :mod:`repro.experiments.fig12_hausdorff` | Fig. 12a / 12b |
| :mod:`repro.experiments.fig13_filtering` | Fig. 13a / 13b |
| :mod:`repro.experiments.fig14_traffic` | Fig. 14a / 14b |
| :mod:`repro.experiments.fig15_computation` | Fig. 15a / 15b |
| :mod:`repro.experiments.fig16_energy` | Fig. 16 |
| :mod:`repro.experiments.table1_overheads` | Table 1 + Theorem 4.1 |
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
