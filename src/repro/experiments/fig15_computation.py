"""Fig. 15: per-node computational intensity vs network size.

Paper claims: INLR's per-node computation is large and grows with the
network size; TinyDB (the store-and-forward lower bound) and Iso-Map stay
low, and the amplified view (Fig. 15b) shows Iso-Map's per-node
computation does not grow with the network size -- a constant per node.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines import INLRProtocol, TinyDBProtocol
from repro.experiments.common import (
    ExperimentResult,
    default_levels,
    harbor_network,
    run_isomap,
)
from repro.experiments.fig14_traffic import _scaled_harbor

DEFAULT_SIDES: Sequence[int] = (15, 25, 35, 50)


def run_fig15(
    sides: Sequence[int] = DEFAULT_SIDES,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Mean per-node arithmetic operations for the three protocols."""
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="fig15",
        title="per-node computational intensity vs network size",
        columns=["field_side", "n_nodes", "isomap_ops", "tinydb_ops", "inlr_ops"],
        notes="mean arithmetic ops per node; density 1",
    )
    for side in sides:
        n = side * side
        field = _scaled_harbor(side)
        acc: Dict[str, List[float]] = {"isomap": [], "tinydb": [], "inlr": []}
        for seed in seeds:
            iso_net = harbor_network(n, "random", seed=seed, field=field)
            acc["isomap"].append(
                run_isomap(iso_net).costs.per_node_ops_mean()
            )
            grid_net = harbor_network(n, "grid", seed=seed, field=field)
            acc["tinydb"].append(
                TinyDBProtocol(levels).run(grid_net).costs.per_node_ops_mean()
            )
            acc["inlr"].append(
                INLRProtocol(levels).run(grid_net).costs.per_node_ops_mean()
            )
        k = len(seeds)
        result.add_row(
            field_side=side,
            n_nodes=n,
            isomap_ops=sum(acc["isomap"]) / k,
            tinydb_ops=sum(acc["tinydb"]) / k,
            inlr_ops=sum(acc["inlr"]) / k,
        )
    return result
