"""Fig. 7: gradient-direction error vs average node degree.

The paper plots the angular error between each isoline node's calculated
gradient direction and the normal direction of the true isoline, against
the average node degree (swept via the radio range).  The error drops
rapidly with degree and is within ~5 degrees at the connectivity regime
(degree >= 7).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import ContourQuery
from repro.core.detection import detect_isoline_nodes
from repro.core.protocol import IsoMapProtocol
from repro.experiments.common import ExperimentResult, PAPER_QUERY, harbor_network
from repro.field import make_harbor_field
from repro.metrics.gradient_error import gradient_errors, summarize_errors
from repro.network import CostAccountant

#: Radio ranges swept to vary the average node degree (density stays 1).
DEFAULT_RANGES: Sequence[float] = (1.0, 1.2, 1.5, 1.8, 2.2, 2.6, 3.0)


def run_fig07(
    n: int = 2500,
    ranges: Sequence[float] = DEFAULT_RANGES,
    seeds: Sequence[int] = (1, 2, 3),
    query: Optional[ContourQuery] = None,
    sensing_noise: float = 0.05,
) -> ExperimentResult:
    """Sweep the radio range; measure gradient errors of generated reports.

    ``sensing_noise`` models per-reading sonar measurement noise (metres);
    the paper's real trace carries such roughness implicitly.  With noisy
    readings the regression averages over the neighbourhood, so the error
    falls as the degree grows -- the mechanism behind Fig. 7's curve.
    """
    q = query if query is not None else PAPER_QUERY
    field = make_harbor_field()
    result = ExperimentResult(
        experiment_id="fig07",
        title="gradient direction error vs average node degree",
        columns=["radio_range", "avg_degree", "mean_err_deg", "p95_err_deg", "reports"],
        notes=f"n={n}, seeds={list(seeds)}, sensing_noise={sensing_noise} m, harbor field",
    )
    for r in ranges:
        errors = []
        degrees = []
        for seed in seeds:
            net = harbor_network(
                n,
                "random",
                seed=seed,
                radio_range=r,
                field=field,
                sensing_noise=sensing_noise,
            )
            degrees.append(net.average_degree())
            costs = CostAccountant(net.n_nodes)
            detection = detect_isoline_nodes(net, q, costs)
            proto = IsoMapProtocol(q)
            reports = proto._generate_reports(net, detection, costs)
            errors.extend(gradient_errors(field, reports))
        if not errors:
            continue
        stats = summarize_errors(errors)
        result.add_row(
            radio_range=r,
            avg_degree=sum(degrees) / len(degrees),
            mean_err_deg=stats.mean_deg,
            p95_err_deg=stats.p95_deg,
            reports=stats.count,
        )
    return result
