"""Shared experiment infrastructure.

Keeps every figure module to the same shape: build networks with the
paper's parameters, run protocols, collect rows, print a table.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
from repro.core.protocol import IsoMapResult
from repro.network.faults import FaultPlan
from repro.network.transport import TransportConfig
from repro.field import make_harbor_field
from repro.field.base import ScalarField
from repro.field.harbor import DEFAULT_ISOLEVELS
from repro.network import SensorNetwork

#: The paper's operating point for in-network filtering (Section 5.1).
PAPER_FILTER = FilterConfig(angular_separation_deg=30.0, distance_separation=4.0)

#: The paper's default query over the harbor depth data.
PAPER_QUERY = ContourQuery(
    value_lo=6.0, value_hi=12.0, granularity=2.0, epsilon_fraction=0.05
)

#: Evaluation raster used by accuracy metrics throughout the experiments.
ACCURACY_RASTER = 80


@dataclass
class ExperimentResult:
    """Rows reproducing one paper figure or table.

    Attributes:
        experiment_id: e.g. ``"fig11a"``.
        title: human-readable description.
        columns: ordered column names present in every row.
        rows: the data; one dict per plotted point.
        notes: provenance / parameter notes printed under the table.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **kwargs: Any) -> None:
        missing = [c for c in self.columns if c not in kwargs]
        if missing:
            raise ValueError(f"row missing columns: {missing}")
        self.rows.append(kwargs)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]

    def to_csv(self) -> str:
        """Render as CSV (header + one line per row) for external plotting.

        Fields are formatted with repr-ish fidelity (full float precision)
        and quoted only when they contain a comma.
        """

        def cell(v: Any) -> str:
            s = str(v)
            if "," in s or '"' in s:
                s = '"' + s.replace('"', '""') + '"'
            return s

        lines = [",".join(cell(c) for c in self.columns)]
        for row in self.rows:
            lines.append(",".join(cell(row[c]) for c in self.columns))
        return "\n".join(lines) + "\n"

    def to_table(self) -> str:
        """Render as a fixed-width text table (what the benches print)."""
        header = [str(c) for c in self.columns]
        body = [
            [_fmt(row[c]) for c in self.columns] for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


#: Topology skeletons (adjacency + routing tree) memoised across epochs
#: and sweeps.  The skeleton depends only on the deployment geometry --
#: never on the sensed field or noise -- so any sweep that revisits the
#: same (n, deployment, seed, radio_range, bounds) rebuilds neither the
#: CSR adjacency nor the BFS tree.  Worker processes each hold their own
#: copy (the runner forks per job), which is still a win for the
#: multi-epoch and multi-protocol points that dominate the sweeps.
#:
#: Bounded LRU: at large n one skeleton pins hundreds of MB of arrays
#: (a 10^6-node CSR plus neighbour lists), so a sweep that walks many
#: geometries must evict.  Capacity 4 covers the common random+grid
#: pair at two sizes in flight; hits refresh recency.
_SKELETON_CACHE: "OrderedDict[tuple, Any]" = OrderedDict()
_SKELETON_CACHE_CAPACITY = 4


def harbor_network(
    n: int,
    deployment: str = "random",
    seed: int = 1,
    radio_range: float = 1.5,
    field: Optional[ScalarField] = None,
    sensing_noise: float = 0.0,
    reuse_topology: bool = False,
) -> SensorNetwork:
    """A network over the harbor field with the paper's defaults.

    Args:
        n: node count (2500 = the paper's density-1 operating point on
           the 50 x 50 field).
        deployment: ``"random"`` (Iso-Map's default) or ``"grid"``
            (TinyDB's requirement).
        seed: deployment seed.
        radio_range: disk radius (paper: 1.5 normalised units).
        field: override the sensed field (defaults to the shared harbor
            stand-in).
        reuse_topology: memoise the topology skeleton (adjacency + tree)
            keyed on the deployment geometry and rebuild only the sensed
            values on a cache hit.  Positions are drawn either way, so
            the rng stream (and therefore the sensing-noise draws) is
            identical with and without reuse.
    """
    f = field if field is not None else make_harbor_field()
    deploy = {
        "random": SensorNetwork.random_deploy,
        "grid": SensorNetwork.grid_deploy,
    }.get(deployment)
    if deploy is None:
        raise ValueError(f"unknown deployment {deployment!r}")
    prebuilt = None
    key = None
    if reuse_topology:
        b = f.bounds
        key = (n, deployment, seed, radio_range, b.xmin, b.ymin, b.xmax, b.ymax)
        prebuilt = _SKELETON_CACHE.get(key)
        if prebuilt is not None:
            _SKELETON_CACHE.move_to_end(key)
    net = deploy(
        f,
        n,
        radio_range=radio_range,
        seed=seed,
        sensing_noise=sensing_noise,
        prebuilt=prebuilt,
    )
    if reuse_topology and prebuilt is None:
        _SKELETON_CACHE[key] = net.skeleton()
        while len(_SKELETON_CACHE) > _SKELETON_CACHE_CAPACITY:
            _SKELETON_CACHE.popitem(last=False)
    return net


def run_isomap(
    network: SensorNetwork,
    query: Optional[ContourQuery] = None,
    filter_config: Optional[FilterConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    transport_config: Optional[TransportConfig] = None,
    tile_size: Optional[float] = None,
    tile_jobs: int = 1,
) -> IsoMapResult:
    """Run Iso-Map with the paper's defaults unless overridden.

    ``fault_plan`` / ``transport_config`` / ``tile_size`` / ``tile_jobs``
    forward straight to :class:`IsoMapProtocol`; the tile arguments only
    matter under a non-null fault plan (see :mod:`repro.network.tiling`).
    """
    q = query if query is not None else PAPER_QUERY
    cfg = filter_config if filter_config is not None else PAPER_FILTER
    return IsoMapProtocol(
        q,
        cfg,
        fault_plan=fault_plan,
        transport_config=transport_config,
        tile_size=tile_size,
        tile_jobs=tile_jobs,
    ).run(network)


def default_levels() -> List[float]:
    return list(DEFAULT_ISOLEVELS)


def radio_range_for_density(density: float, base: float = 1.5) -> float:
    """Radio range keeping the paper's connectivity regime at any density.

    At density 1 the paper's range of 1.5 yields average degree ~7 -- the
    minimum for a connected random deployment [1].  Sparser deployments
    need a proportionally larger range (degree ~ density * pi * r^2), so
    below density 1 the range grows as 1/sqrt(density); above it the
    paper's fixed 1.5 is kept.
    """
    if density <= 0:
        raise ValueError("density must be positive")
    return base if density >= 1.0 else base / density**0.5
