"""Fig. 14: network traffic overhead vs diameter (a) and density (b).

Paper claims: TinyDB's and INLR's traffic grows rapidly with the network
diameter (field size at density 1) while Iso-Map's grows far slower
(O(sqrt(n)) sources instead of O(n)); against density all three grow, but
Iso-Map with a much smaller factor.

Both sweeps run through :mod:`repro.experiments.runner`: one point per
(configuration, seed), parallelisable with ``jobs`` and cacheable with
``cache_dir``, with tables byte-identical at any job count.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from repro.baselines import INLRProtocol, TinyDBProtocol
from repro.experiments.common import (
    ExperimentResult,
    default_levels,
    harbor_network,
    radio_range_for_density,
    run_isomap,
)
from repro.experiments.runner import (
    grid_points,
    group_by_config,
    run_sweep,
    seed_mean,
)
from repro.field import WindowField, make_harbor_field
from repro.geometry import BoundingBox

#: Field sides for the diameter sweep (density 1: n = side^2).
DEFAULT_SIDES: Sequence[int] = (15, 25, 35, 50)

#: Densities for the density sweep on a 30 x 30 field.
DEFAULT_DENSITIES: Sequence[float] = (0.5, 1.0, 2.0, 4.0)

#: Node counts for the large-n scaling sweep (density 1: side = sqrt(n)).
DEFAULT_SCALING_N: Sequence[int] = (2500, 10000, 40000)

#: The million-node extension (the tile-sharded, memory-bounded regime).
MILLION_SCALING_N: Sequence[int] = (2500, 10000, 40000, 100000, 1000000)

#: TinyDB's n reports x sqrt(n) hops epoch is infeasible past this size;
#: the xl sweeps blank its column above it rather than extrapolate.
TINYDB_MAX_N = 40000


def auto_tile_size(side: float) -> float:
    """The ``tile_size="auto"`` rule: ~8 tiles per axis, never below the
    paper's 1.5 radio range (the tiled adjacency build requires
    ``tile_size >= radio_range``)."""
    return max(1.5, side / 8.0)


def _scaled_harbor(side: float) -> WindowField:
    """A centred ``side x side`` window of the harbor field.

    The paper grows the monitored area with the network size while the
    physical bathymetry (and so the value gradient per metre, and the
    epsilon-stripe width of Theorem 4.1) stays fixed; a *window* of the
    trace reproduces that, whereas rescaling the trace would dilate the
    gradients and break the sqrt(n) report scaling.
    """
    inner = make_harbor_field()
    lo = (50.0 - side) / 2.0
    return WindowField(inner, BoundingBox(lo, lo, lo + side, lo + side))


def fig14a_point(side: int, seed: int) -> Dict[str, float]:
    """Traffic of the three protocols for one (field side, seed) point."""
    levels = default_levels()
    n = side * side
    field = _scaled_harbor(side)
    iso_net = harbor_network(n, "random", seed=seed, field=field)
    grid_net = harbor_network(n, "grid", seed=seed, field=field)
    return {
        "diameter": iso_net.diameter_hops,
        "isomap": run_isomap(iso_net).costs.total_traffic_kb(),
        "tinydb": TinyDBProtocol(levels).run(grid_net).costs.total_traffic_kb(),
        "inlr": INLRProtocol(levels).run(grid_net).costs.total_traffic_kb(),
    }


def fig14b_point(density: float, side: int, seed: int) -> Dict[str, float]:
    """Traffic of the three protocols for one (density, seed) point."""
    levels = default_levels()
    field = _scaled_harbor(side)
    n = max(9, round(density * side * side))
    r = radio_range_for_density(density)
    iso_net = harbor_network(n, "random", seed=seed, field=field, radio_range=r)
    grid_net = harbor_network(n, "grid", seed=seed, field=field, radio_range=r)
    return {
        "isomap": run_isomap(iso_net).costs.total_traffic_kb(),
        "tinydb": TinyDBProtocol(levels).run(grid_net).costs.total_traffic_kb(),
        "inlr": INLRProtocol(levels).run(grid_net).costs.total_traffic_kb(),
    }


def _scaling_plan(fault_intensity: float, seed: int):
    """The shared fault plan of a scaling point (None at zero intensity,
    which keeps the tiled and untiled epochs on the identical no-engine
    path and the historical cache keys unchanged)."""
    from repro.network.faults import FaultPlan

    if fault_intensity <= 0.0:
        return None
    return FaultPlan.at_intensity(fault_intensity, seed=seed)


def _resolve_tile_size(tile_size, side: float) -> Optional[float]:
    if tile_size == "auto":
        return auto_tile_size(side)
    return tile_size


def fig14_scaling_point(
    n: int,
    seed: int,
    fault_intensity: float = 0.0,
    tile_size=None,
    tinydb: bool = True,
) -> Dict[str, float]:
    """Traffic and report counts for one large-n point at density 1.

    Uses the side-parameterised harbor field (landmarks scale, per-unit
    gradients fixed -- see :class:`repro.field.harbor.HuanghuaHarborField`)
    instead of the windowed trace, which cannot exceed side 50.  Only
    Iso-Map and TinyDB run: the region-merge baselines are quadratic in
    the subtree sizes near the sink and infeasible at n = 40000.

    Args:
        fault_intensity: shared :meth:`FaultPlan.at_intensity` knob; 0
            keeps the historical perfect-link point (and its cache key).
        tile_size: spatial tile edge for the memory-bounded tiled epoch
            (``"auto"`` = :func:`auto_tile_size`); only meaningful with
            faults on.  Bit-identical to untiled at any value.
        tinydb: run the TinyDB baseline too.  Off past
            :data:`TINYDB_MAX_N`, where its n x sqrt(n) epoch is
            infeasible; the column reports NaN.
    """
    levels = default_levels()
    side = round(math.sqrt(n))
    field = make_harbor_field(side=side)
    plan = _scaling_plan(fault_intensity, seed)
    ts = _resolve_tile_size(tile_size, side)
    iso_net = harbor_network(n, "random", seed=seed, field=field, reuse_topology=True)
    iso = run_isomap(iso_net, fault_plan=plan, tile_size=ts)
    out = {
        "diameter": iso_net.diameter_hops,
        "isomap_reports": iso.costs.reports_generated,
        "isomap": iso.costs.total_traffic_kb(),
        "tinydb": float("nan"),
    }
    if tinydb:
        grid_net = harbor_network(
            n, "grid", seed=seed, field=field, reuse_topology=True
        )
        tdb = TinyDBProtocol(levels, fault_plan=plan).run(grid_net)
        out["tinydb"] = tdb.costs.total_traffic_kb()
    return out


def _scaling_kwargs(
    ns: Sequence[int],
    fault_intensity: float,
    tile_size,
    tinydb_max_n: Optional[int],
) -> list:
    """Per-point kwargs for the scaling sweeps.

    New knobs enter a point's kwargs only when they differ from the
    point function's defaults, so historical sweep cache keys (a hash of
    the kwargs dict) are untouched for the classic zero-fault points.
    """
    out = []
    for n in ns:
        kw: Dict[str, object] = {"n": n}
        if fault_intensity > 0.0:
            kw["fault_intensity"] = fault_intensity
        if tile_size is not None:
            kw["tile_size"] = tile_size
        if tinydb_max_n is not None and n > tinydb_max_n:
            kw["tinydb"] = False
        out.append(kw)
    return out


def run_fig14_scaling(
    ns: Sequence[int] = DEFAULT_SCALING_N,
    seeds: Sequence[int] = (1,),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    fault_intensity: float = 0.0,
    tile_size=None,
    tinydb_max_n: Optional[int] = None,
) -> ExperimentResult:
    """Traffic and report scaling at n = 2500..10^6 (density 1).

    The headline claim: Iso-Map's report count grows like the isoline
    length, i.e. O(sqrt(n)) at density 1, while TinyDB's traffic grows
    superlinearly (n reports times sqrt(n) average hops).  The fitted
    log-log exponent of the Iso-Map report count is printed in the notes.

    ``fault_intensity`` / ``tile_size`` / ``tinydb_max_n`` extend the
    sweep into the million-node regime (``ns=MILLION_SCALING_N``): faults
    exercise the epoch transport, tiling bounds its memory, and TinyDB
    is blanked (NaN) above ``tinydb_max_n``.
    """
    result = ExperimentResult(
        experiment_id="fig14_scaling",
        title="traffic and report scaling at large n",
        columns=[
            "n_nodes",
            "field_side",
            "diameter_hops",
            "isomap_reports",
            "isomap_kb",
            "tinydb_kb",
        ],
    )
    points = grid_points(
        fig14_scaling_point,
        _scaling_kwargs(ns, fault_intensity, tile_size, tinydb_max_n),
        seeds,
    )
    groups = group_by_config(run_sweep(points, jobs, cache_dir), len(seeds))
    for n, group in zip(ns, groups):
        result.add_row(
            n_nodes=n,
            field_side=round(math.sqrt(n)),
            diameter_hops=seed_mean(group, "diameter"),
            isomap_reports=seed_mean(group, "isomap_reports"),
            isomap_kb=seed_mean(group, "isomap"),
            tinydb_kb=seed_mean(group, "tinydb"),
        )
    exponent = _loglog_slope(
        result.column("n_nodes"), result.column("isomap_reports")
    )
    extras = ""
    if fault_intensity > 0.0:
        extras += f"; fault intensity {fault_intensity:g}"
    if tile_size is not None:
        extras += f"; tiled epochs (tile_size={tile_size})"
    result.notes = (
        "density 1; side-parameterised harbor field; Iso-Map report count "
        f"~ n^{exponent:.2f} (O(sqrt(n)) predicts 0.5){extras}"
    )
    return result


def _loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x)."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    mx = sum(lx) / len(lx)
    my = sum(ly) / len(ly)
    var = sum((x - mx) ** 2 for x in lx)
    cov = sum((x - mx) * (y - my) for x, y in zip(lx, ly))
    return cov / var if var else float("nan")


def run_fig14a(
    sides: Sequence[int] = DEFAULT_SIDES,
    seeds: Sequence[int] = (1, 2),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Traffic (KB) vs network diameter (hops) at density 1."""
    result = ExperimentResult(
        experiment_id="fig14a",
        title="network traffic (KB) vs network diameter",
        columns=["field_side", "n_nodes", "diameter_hops", "isomap_kb", "tinydb_kb", "inlr_kb"],
        notes="density 1; diameter measured as routing-tree depth",
    )
    points = grid_points(fig14a_point, [{"side": s} for s in sides], seeds)
    groups = group_by_config(run_sweep(points, jobs, cache_dir), len(seeds))
    for side, group in zip(sides, groups):
        result.add_row(
            field_side=side,
            n_nodes=side * side,
            diameter_hops=seed_mean(group, "diameter"),
            isomap_kb=seed_mean(group, "isomap"),
            tinydb_kb=seed_mean(group, "tinydb"),
            inlr_kb=seed_mean(group, "inlr"),
        )
    return result


def run_fig14b(
    densities: Sequence[float] = DEFAULT_DENSITIES,
    side: int = 30,
    seeds: Sequence[int] = (1, 2),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Traffic (KB) vs node density on a fixed field."""
    result = ExperimentResult(
        experiment_id="fig14b",
        title="network traffic (KB) vs node density",
        columns=["density", "n_nodes", "isomap_kb", "tinydb_kb", "inlr_kb"],
        notes=f"{side}x{side} field",
    )
    points = grid_points(
        fig14b_point, [{"density": d, "side": side} for d in densities], seeds
    )
    groups = group_by_config(run_sweep(points, jobs, cache_dir), len(seeds))
    for density, group in zip(densities, groups):
        result.add_row(
            density=density,
            n_nodes=max(9, round(density * side * side)),
            isomap_kb=seed_mean(group, "isomap"),
            tinydb_kb=seed_mean(group, "tinydb"),
            inlr_kb=seed_mean(group, "inlr"),
        )
    return result
