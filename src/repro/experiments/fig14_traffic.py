"""Fig. 14: network traffic overhead vs diameter (a) and density (b).

Paper claims: TinyDB's and INLR's traffic grows rapidly with the network
diameter (field size at density 1) while Iso-Map's grows far slower
(O(sqrt(n)) sources instead of O(n)); against density all three grow, but
Iso-Map with a much smaller factor.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines import INLRProtocol, TinyDBProtocol
from repro.experiments.common import (
    ExperimentResult,
    default_levels,
    harbor_network,
    radio_range_for_density,
    run_isomap,
)
from repro.field import WindowField, make_harbor_field
from repro.geometry import BoundingBox

#: Field sides for the diameter sweep (density 1: n = side^2).
DEFAULT_SIDES: Sequence[int] = (15, 25, 35, 50)

#: Densities for the density sweep on a 30 x 30 field.
DEFAULT_DENSITIES: Sequence[float] = (0.5, 1.0, 2.0, 4.0)


def _scaled_harbor(side: float) -> WindowField:
    """A centred ``side x side`` window of the harbor field.

    The paper grows the monitored area with the network size while the
    physical bathymetry (and so the value gradient per metre, and the
    epsilon-stripe width of Theorem 4.1) stays fixed; a *window* of the
    trace reproduces that, whereas rescaling the trace would dilate the
    gradients and break the sqrt(n) report scaling.
    """
    inner = make_harbor_field()
    lo = (50.0 - side) / 2.0
    return WindowField(inner, BoundingBox(lo, lo, lo + side, lo + side))


def run_fig14a(
    sides: Sequence[int] = DEFAULT_SIDES,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Traffic (KB) vs network diameter (hops) at density 1."""
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="fig14a",
        title="network traffic (KB) vs network diameter",
        columns=["field_side", "n_nodes", "diameter_hops", "isomap_kb", "tinydb_kb", "inlr_kb"],
        notes="density 1; diameter measured as routing-tree depth",
    )
    for side in sides:
        n = side * side
        field = _scaled_harbor(side)
        acc: Dict[str, List[float]] = {"isomap": [], "tinydb": [], "inlr": []}
        diameters = []
        for seed in seeds:
            iso_net = harbor_network(n, "random", seed=seed, field=field)
            diameters.append(iso_net.diameter_hops)
            acc["isomap"].append(run_isomap(iso_net).costs.total_traffic_kb())
            grid_net = harbor_network(n, "grid", seed=seed, field=field)
            acc["tinydb"].append(
                TinyDBProtocol(levels).run(grid_net).costs.total_traffic_kb()
            )
            acc["inlr"].append(
                INLRProtocol(levels).run(grid_net).costs.total_traffic_kb()
            )
        k = len(seeds)
        result.add_row(
            field_side=side,
            n_nodes=n,
            diameter_hops=sum(diameters) / k,
            isomap_kb=sum(acc["isomap"]) / k,
            tinydb_kb=sum(acc["tinydb"]) / k,
            inlr_kb=sum(acc["inlr"]) / k,
        )
    return result


def run_fig14b(
    densities: Sequence[float] = DEFAULT_DENSITIES,
    side: int = 30,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Traffic (KB) vs node density on a fixed field."""
    levels = default_levels()
    field = _scaled_harbor(side)
    result = ExperimentResult(
        experiment_id="fig14b",
        title="network traffic (KB) vs node density",
        columns=["density", "n_nodes", "isomap_kb", "tinydb_kb", "inlr_kb"],
        notes=f"{side}x{side} field",
    )
    for density in densities:
        n = max(9, round(density * side * side))
        r = radio_range_for_density(density)
        acc: Dict[str, List[float]] = {"isomap": [], "tinydb": [], "inlr": []}
        for seed in seeds:
            iso_net = harbor_network(n, "random", seed=seed, field=field, radio_range=r)
            acc["isomap"].append(run_isomap(iso_net).costs.total_traffic_kb())
            grid_net = harbor_network(n, "grid", seed=seed, field=field, radio_range=r)
            acc["tinydb"].append(
                TinyDBProtocol(levels).run(grid_net).costs.total_traffic_kb()
            )
            acc["inlr"].append(
                INLRProtocol(levels).run(grid_net).costs.total_traffic_kb()
            )
        k = len(seeds)
        result.add_row(
            density=density,
            n_nodes=n,
            isomap_kb=sum(acc["isomap"]) / k,
            tinydb_kb=sum(acc["tinydb"]) / k,
            inlr_kb=sum(acc["inlr"]) / k,
        )
    return result
