"""Fig. 16: per-node energy consumption vs network size.

Paper claims: Iso-Map's per-node energy is far below TinyDB's and INLR's,
and -- unlike theirs -- barely grows with the network size (the scalability
headline).  Energy combines the counted traffic and computation under the
Mica2 model (Section 5.3).

The sweep runs through :mod:`repro.experiments.runner` (``jobs`` workers,
optional result cache); tables are byte-identical at any job count.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from repro.baselines import INLRProtocol, TinyDBProtocol
from repro.energy import energy_from_costs
from repro.experiments.common import (
    ExperimentResult,
    default_levels,
    harbor_network,
    run_isomap,
)
from repro.experiments.fig14_traffic import (
    DEFAULT_SCALING_N,
    _resolve_tile_size,
    _scaled_harbor,
    _scaling_kwargs,
    _scaling_plan,
)
from repro.field import make_harbor_field
from repro.experiments.runner import (
    grid_points,
    group_by_config,
    run_sweep,
    seed_mean,
)

DEFAULT_SIDES: Sequence[int] = (15, 25, 35, 50)


def fig16_point(side: int, seed: int) -> Dict[str, float]:
    """Per-node energy of the three protocols at one (side, seed) point."""
    levels = default_levels()
    n = side * side
    field = _scaled_harbor(side)
    iso_net = harbor_network(n, "random", seed=seed, field=field)
    grid_net = harbor_network(n, "grid", seed=seed, field=field)
    return {
        "isomap": energy_from_costs(run_isomap(iso_net).costs).per_node_mean_mj(),
        "tinydb": energy_from_costs(
            TinyDBProtocol(levels).run(grid_net).costs
        ).per_node_mean_mj(),
        "inlr": energy_from_costs(
            INLRProtocol(levels).run(grid_net).costs
        ).per_node_mean_mj(),
    }


def run_fig16(
    sides: Sequence[int] = DEFAULT_SIDES,
    seeds: Sequence[int] = (1, 2),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Mean per-node energy (mJ) for the three protocols."""
    result = ExperimentResult(
        experiment_id="fig16",
        title="per-node energy (mJ) vs network size",
        columns=["field_side", "n_nodes", "isomap_mj", "tinydb_mj", "inlr_mj"],
        notes="Mica2 model: 42/29 mW CC1000 at 38.4 kbps, 242 MIPS/W CPU",
    )
    points = grid_points(fig16_point, [{"side": s} for s in sides], seeds)
    groups = group_by_config(run_sweep(points, jobs, cache_dir), len(seeds))
    for side, group in zip(sides, groups):
        result.add_row(
            field_side=side,
            n_nodes=side * side,
            isomap_mj=seed_mean(group, "isomap"),
            tinydb_mj=seed_mean(group, "tinydb"),
            inlr_mj=seed_mean(group, "inlr"),
        )
    return result


def fig16_scaling_point(
    n: int,
    seed: int,
    fault_intensity: float = 0.0,
    tile_size=None,
    tinydb: bool = True,
) -> Dict[str, float]:
    """Per-node energy at one large-n point (Iso-Map + TinyDB only).

    The knobs mirror :func:`fig14_scaling_point`: faults exercise the
    epoch transport, tiling bounds its memory (bit-identical result),
    and ``tinydb=False`` blanks the infeasible baseline column (NaN).
    """
    levels = default_levels()
    side = round(math.sqrt(n))
    field = make_harbor_field(side=side)
    plan = _scaling_plan(fault_intensity, seed)
    ts = _resolve_tile_size(tile_size, side)
    iso_net = harbor_network(n, "random", seed=seed, field=field, reuse_topology=True)
    iso = run_isomap(iso_net, fault_plan=plan, tile_size=ts)
    out = {
        "isomap": energy_from_costs(iso.costs).per_node_mean_mj(),
        "tinydb": float("nan"),
    }
    if tinydb:
        grid_net = harbor_network(
            n, "grid", seed=seed, field=field, reuse_topology=True
        )
        out["tinydb"] = energy_from_costs(
            TinyDBProtocol(levels, fault_plan=plan).run(grid_net).costs
        ).per_node_mean_mj()
    return out


def run_fig16_scaling(
    ns: Sequence[int] = DEFAULT_SCALING_N,
    seeds: Sequence[int] = (1,),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    fault_intensity: float = 0.0,
    tile_size=None,
    tinydb_max_n: Optional[int] = None,
) -> ExperimentResult:
    """Mean per-node energy (mJ) at n = 2500..10^6 (density 1).

    Extends Fig. 16 past the paper's 2500-node field: Iso-Map's per-node
    energy should stay nearly flat while TinyDB's keeps climbing with the
    diameter.  The region-merge baselines are omitted (quadratic near the
    sink, infeasible at n = 40000); TinyDB itself is blanked above
    ``tinydb_max_n`` in the million-node sweeps.
    """
    notes = "density 1; side-parameterised harbor field; Mica2 model"
    if fault_intensity > 0.0:
        notes += f"; fault intensity {fault_intensity:g}"
    if tile_size is not None:
        notes += f"; tiled epochs (tile_size={tile_size})"
    result = ExperimentResult(
        experiment_id="fig16_scaling",
        title="per-node energy (mJ) at large n",
        columns=["n_nodes", "field_side", "isomap_mj", "tinydb_mj"],
        notes=notes,
    )
    points = grid_points(
        fig16_scaling_point,
        _scaling_kwargs(ns, fault_intensity, tile_size, tinydb_max_n),
        seeds,
    )
    groups = group_by_config(run_sweep(points, jobs, cache_dir), len(seeds))
    for n, group in zip(ns, groups):
        result.add_row(
            n_nodes=n,
            field_side=round(math.sqrt(n)),
            isomap_mj=seed_mean(group, "isomap"),
            tinydb_mj=seed_mean(group, "tinydb"),
        )
    return result
