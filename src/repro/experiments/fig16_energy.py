"""Fig. 16: per-node energy consumption vs network size.

Paper claims: Iso-Map's per-node energy is far below TinyDB's and INLR's,
and -- unlike theirs -- barely grows with the network size (the scalability
headline).  Energy combines the counted traffic and computation under the
Mica2 model (Section 5.3).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines import INLRProtocol, TinyDBProtocol
from repro.energy import energy_from_costs
from repro.experiments.common import (
    ExperimentResult,
    default_levels,
    harbor_network,
    run_isomap,
)
from repro.experiments.fig14_traffic import _scaled_harbor

DEFAULT_SIDES: Sequence[int] = (15, 25, 35, 50)


def run_fig16(
    sides: Sequence[int] = DEFAULT_SIDES,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Mean per-node energy (mJ) for the three protocols."""
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="fig16",
        title="per-node energy (mJ) vs network size",
        columns=["field_side", "n_nodes", "isomap_mj", "tinydb_mj", "inlr_mj"],
        notes="Mica2 model: 42/29 mW CC1000 at 38.4 kbps, 242 MIPS/W CPU",
    )
    for side in sides:
        n = side * side
        field = _scaled_harbor(side)
        acc: Dict[str, List[float]] = {"isomap": [], "tinydb": [], "inlr": []}
        for seed in seeds:
            iso_net = harbor_network(n, "random", seed=seed, field=field)
            acc["isomap"].append(
                energy_from_costs(run_isomap(iso_net).costs).per_node_mean_mj()
            )
            grid_net = harbor_network(n, "grid", seed=seed, field=field)
            acc["tinydb"].append(
                energy_from_costs(
                    TinyDBProtocol(levels).run(grid_net).costs
                ).per_node_mean_mj()
            )
            acc["inlr"].append(
                energy_from_costs(
                    INLRProtocol(levels).run(grid_net).costs
                ).per_node_mean_mj()
            )
        k = len(seeds)
        result.add_row(
            field_side=side,
            n_nodes=n,
            isomap_mj=sum(acc["isomap"]) / k,
            tinydb_mj=sum(acc["tinydb"]) / k,
            inlr_mj=sum(acc["inlr"]) / k,
        )
    return result
