"""Fig. 11: mapping accuracy vs node density (a) and node failures (b).

Paper claims: accuracy of both protocols rises quickly above 80% with
density, Iso-Map slightly below TinyDB but comparable; a larger border
range ``epsilon`` helps at low density but hurts at high density; both
protocols degrade with failures and become unusable past ~40%, with a
large ``epsilon`` making Iso-Map more failure-tolerant.

Sweeps run through :mod:`repro.experiments.runner` (``jobs`` workers,
optional result cache); tables are byte-identical at any job count.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines import TinyDBProtocol
from repro.core import ContourQuery
from repro.experiments.common import (
    ACCURACY_RASTER,
    ExperimentResult,
    PAPER_QUERY,
    default_levels,
    harbor_network,
    radio_range_for_density,
    run_isomap,
)
from repro.experiments.runner import (
    grid_points,
    group_by_config,
    run_sweep,
    seed_mean,
)
from repro.field import make_harbor_field
from repro.metrics import mapping_accuracy

#: Densities on the 50 x 50 field (node counts = density * 2500).
DEFAULT_DENSITIES: Sequence[float] = (0.16, 0.36, 0.64, 1.0, 2.0, 4.0)

#: Failure ratios for Fig. 11b.
DEFAULT_FAILURES: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

#: The paper's epsilon study: the default and a "rough border" setting.
EPSILONS: Sequence[float] = (0.05, 0.25)


def _wide_query(eps: float) -> ContourQuery:
    return ContourQuery(
        PAPER_QUERY.value_lo,
        PAPER_QUERY.value_hi,
        PAPER_QUERY.granularity,
        epsilon_fraction=eps,
    )


def fig11a_point(density: float, raster: int, seed: int) -> Dict[str, float]:
    """Accuracies of TinyDB and Iso-Map (both epsilons) at one point."""
    field = make_harbor_field()
    levels = default_levels()
    n = max(4, round(density * 2500))
    r = radio_range_for_density(density)
    tdb_net = harbor_network(n, "grid", seed=seed, field=field, radio_range=r)
    tdb = TinyDBProtocol(levels).run(tdb_net)
    out = {
        "tinydb": mapping_accuracy(field, tdb.band_map, levels, raster, raster)
    }
    iso_net = harbor_network(n, "random", seed=seed, field=field, radio_range=r)
    for eps, key in zip(EPSILONS, ("isomap_eps005", "isomap_eps025")):
        iso = run_isomap(iso_net, query=_wide_query(eps))
        out[key] = mapping_accuracy(field, iso.contour_map, levels, raster, raster)
    return out


def fig11b_point(
    ratio: float, n: int, raster: int, failure_mode: str, seed: int
) -> Dict[str, float]:
    """Accuracies under one (failure ratio, seed) injection."""
    field = make_harbor_field()
    levels = default_levels()
    tdb_net = harbor_network(n, "grid", seed=seed, field=field)
    tdb_net.fail_random(ratio, mode=failure_mode)
    tdb = TinyDBProtocol(levels).run(tdb_net)
    out = {
        "tinydb": mapping_accuracy(field, tdb.band_map, levels, raster, raster)
    }
    iso_net = harbor_network(n, "random", seed=seed, field=field)
    iso_net.fail_random(ratio, mode=failure_mode)
    for eps, key in zip(EPSILONS, ("isomap_eps005", "isomap_eps025")):
        iso = run_isomap(iso_net, query=_wide_query(eps))
        out[key] = mapping_accuracy(field, iso.contour_map, levels, raster, raster)
    return out


def run_fig11a(
    densities: Sequence[float] = DEFAULT_DENSITIES,
    seeds: Sequence[int] = (1, 2, 3),
    raster: int = ACCURACY_RASTER,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Accuracy vs density for TinyDB, and Iso-Map at both epsilon values."""
    result = ExperimentResult(
        experiment_id="fig11a",
        title="mapping accuracy vs node density",
        columns=["density", "n_nodes", "tinydb", "isomap_eps005", "isomap_eps025"],
        notes="mean over seeds; density 1 = 2500 nodes on the 50x50 field",
    )
    points = grid_points(
        fig11a_point, [{"density": d, "raster": raster} for d in densities], seeds
    )
    groups = group_by_config(run_sweep(points, jobs, cache_dir), len(seeds))
    for density, group in zip(densities, groups):
        result.add_row(
            density=density,
            n_nodes=max(4, round(density * 2500)),
            tinydb=seed_mean(group, "tinydb"),
            isomap_eps005=seed_mean(group, "isomap_eps005"),
            isomap_eps025=seed_mean(group, "isomap_eps025"),
        )
    return result


def run_fig11b(
    failures: Sequence[float] = DEFAULT_FAILURES,
    n: int = 2500,
    seeds: Sequence[int] = (1, 2, 3),
    raster: int = ACCURACY_RASTER,
    failure_mode: str = "sensing",
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Accuracy vs node-failure ratio at density 1."""
    result = ExperimentResult(
        experiment_id="fig11b",
        title="mapping accuracy vs node failures",
        columns=["failure_ratio", "tinydb", "isomap_eps005", "isomap_eps025"],
        notes=f"n={n}, failure mode={failure_mode!r}, mean over seeds",
    )
    points = grid_points(
        fig11b_point,
        [
            {"ratio": r, "n": n, "raster": raster, "failure_mode": failure_mode}
            for r in failures
        ],
        seeds,
    )
    groups = group_by_config(run_sweep(points, jobs, cache_dir), len(seeds))
    for ratio, group in zip(failures, groups):
        result.add_row(
            failure_ratio=ratio,
            tinydb=seed_mean(group, "tinydb"),
            isomap_eps005=seed_mean(group, "isomap_eps005"),
            isomap_eps025=seed_mean(group, "isomap_eps025"),
        )
    return result
