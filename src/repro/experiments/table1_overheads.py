"""Table 1 + Theorem 4.1: asymptotic claims vs measured scaling exponents.

The analytical table (Section 4.3) is rendered verbatim; next to it the
harness measures, over an ``n`` sweep at density 1:

- the number of generated reports per protocol, fitting ``a * n^b``
  (Iso-Map's b should sit near 0.5 -- Theorem 4.1 -- and the others near
  1.0), and
- Iso-Map's isoline-node count against the Theorem 4.1 prediction
  ``count ~ density * stripe_width * total isoline length``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis import fit_power_law
from repro.analysis.theory import table1
from repro.baselines import DataSuppressionProtocol, TinyDBProtocol
from repro.experiments.common import (
    ExperimentResult,
    default_levels,
    harbor_network,
    run_isomap,
)
from repro.experiments.fig14_traffic import _scaled_harbor

DEFAULT_SIDES: Sequence[int] = (15, 20, 30, 40, 50)


def run_table1(
    sides: Sequence[int] = DEFAULT_SIDES,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Measure report-generation scaling for three representative protocols.

    (eScan and INLR generate one report per node exactly like TinyDB, so
    the TinyDB row stands for all three O(n) source-count protocols; their
    computation scaling is exercised by Fig. 15.)
    """
    levels = default_levels()
    ns: List[int] = []
    counts: Dict[str, List[float]] = {"isomap": [], "tinydb": [], "suppression": []}
    for side in sides:
        n = side * side
        field = _scaled_harbor(side)
        per_seed: Dict[str, List[float]] = {k: [] for k in counts}
        for seed in seeds:
            iso_net = harbor_network(n, "random", seed=seed, field=field)
            iso = run_isomap(iso_net)
            per_seed["isomap"].append(len(iso.detection.isoline_nodes))
            grid_net = harbor_network(n, "grid", seed=seed, field=field)
            per_seed["tinydb"].append(
                TinyDBProtocol(levels).run(grid_net).costs.reports_generated
            )
            per_seed["suppression"].append(
                DataSuppressionProtocol(levels).run(grid_net).costs.reports_generated
            )
        ns.append(n)
        for k in counts:
            counts[k].append(sum(per_seed[k]) / len(seeds))

    result = ExperimentResult(
        experiment_id="table1",
        title="generated reports vs n: measured scaling exponents",
        columns=["protocol", "claimed", "fitted_exponent", "r_squared"],
        notes=(
            "fit of reports = a * n^b over n = "
            + str(ns)
            + "; on harbor windows the number of contour features also "
            "grows with the window, so Iso-Map's exponent exceeds the "
            "fixed-K Theorem 4.1 value -- see the theorem41 bench for the "
            "constant-K regime"
        ),
    )
    claims = {
        "isomap": "O(sqrt(n)) fixed-K",
        "tinydb": "n",
        "suppression": "O(n)",
    }
    for k in ("isomap", "tinydb", "suppression"):
        fit = fit_power_law(ns, counts[k])
        result.add_row(
            protocol=k,
            claimed=claims[k],
            fitted_exponent=fit.exponent,
            r_squared=fit.r_squared,
        )
    return result


def analytical_table() -> str:
    """The paper's Table 1, verbatim (Section 4.3)."""
    return table1()


def run_theorem41(
    sides: Sequence[int] = DEFAULT_SIDES,
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    """Empirical Theorem 4.1 check in the theorem's own regime.

    The theorem bounds the isoline-node count for a CONSTANT number K of
    well-behaved contour regions.  On the harbor trace a growing window
    also grows the number of isolevels and contour features present, so
    the measured exponent there sits between 0.5 and 1 (see
    :func:`run_table1`).  Here we build the theorem's setting exactly: a
    diagonal ridge whose isolines are K fixed parallel curves crossing
    every window, with length proportional to the window side.  The
    fitted exponent should approach 0.5.
    """
    from repro.core import ContourQuery
    from repro.field import CompositeField, PlaneField, RidgeField, WindowField
    from repro.geometry import BoundingBox

    full = BoundingBox(0.0, 0.0, 50.0, 50.0)
    # A horizontal ridge: every isoline is a horizontal line within 3.5
    # units of y = 25, so each one crosses EVERY centred window end to end
    # (length exactly = side, never corner-clipped) and K stays constant.
    ridge = CompositeField(
        full,
        [
            PlaneField(full, c0=4.0, cx=0.0, cy=0.0),
            RidgeField(full, a=(0.0, 25.0), b=(50.0, 25.0), amplitude=9.0, width=2.0),
        ],
    )
    query = ContourQuery(6.0, 12.0, 2.0)

    ns: List[int] = []
    counts: List[float] = []
    result = ExperimentResult(
        experiment_id="theorem41",
        title="isoline-node count vs n on a constant-K contour field",
        columns=["field_side", "n_nodes", "isoline_nodes"],
        notes="horizontal-ridge field: K fixed isolines of length ~ side",
    )
    for side in sides:
        lo = (50.0 - side) / 2.0
        window = WindowField(ridge, BoundingBox(lo, lo, lo + side, lo + side))
        n = side * side
        per_seed = []
        for seed in seeds:
            net = harbor_network(n, "random", seed=seed, field=window)
            iso = run_isomap(net, query=query)
            per_seed.append(len(iso.detection.isoline_nodes))
        ns.append(n)
        counts.append(sum(per_seed) / len(seeds))
        result.add_row(field_side=side, n_nodes=n, isoline_nodes=counts[-1])
    fit = fit_power_law(ns, counts)
    result.notes += (
        f"; fitted exponent = {fit.exponent:.3f} (claim: 0.5), "
        f"r^2 = {fit.r_squared:.3f}"
    )
    return result
