"""Fig. 13 (and Fig. 9): in-network filtering thresholds vs reports/accuracy.

The paper sweeps the angular separation ``s_a`` and distance separation
``s_d`` over a 2500-node density-1 deployment: looser thresholds cut more
reports (Fig. 13a) at some accuracy cost (Fig. 13b), giving Iso-Map its
traffic/fidelity knob.  Fig. 9's two-panel comparison is the same data at
filtering off vs the default operating point.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import FilterConfig
from repro.experiments.common import (
    ACCURACY_RASTER,
    ExperimentResult,
    default_levels,
    harbor_network,
    run_isomap,
)
from repro.field import make_harbor_field
from repro.metrics import mapping_accuracy

DEFAULT_SA: Sequence[float] = (0.0, 10.0, 20.0, 30.0, 45.0, 60.0)
DEFAULT_SD: Sequence[float] = (0.0, 1.0, 2.0, 4.0, 6.0, 8.0)


def run_fig13(
    n: int = 2500,
    sa_values: Sequence[float] = DEFAULT_SA,
    sd_values: Sequence[float] = DEFAULT_SD,
    seeds: Sequence[int] = (1, 2),
    raster: int = ACCURACY_RASTER,
) -> ExperimentResult:
    """Two 1-D sweeps through the (sa, sd) plane around the paper's
    operating point (30 deg, 4): vary sa at sd = 4, vary sd at sa = 30."""
    field = make_harbor_field()
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="fig13",
        title="reports delivered and accuracy vs filtering thresholds",
        columns=["swept", "sa_deg", "sd", "reports", "accuracy"],
        notes=f"n={n}, density 1, mean over seeds; sa=0 or sd=0 disables that test",
    )

    def measure(sa: float, sd: float):
        reports = []
        accs = []
        for seed in seeds:
            net = harbor_network(n, "random", seed=seed, field=field)
            iso = run_isomap(net, filter_config=FilterConfig(sa, sd))
            reports.append(len(iso.delivered_reports))
            accs.append(
                mapping_accuracy(field, iso.contour_map, levels, raster, raster)
            )
        return sum(reports) / len(seeds), sum(accs) / len(seeds)

    for sa in sa_values:
        reps, acc = measure(sa, 4.0)
        result.add_row(swept="sa", sa_deg=sa, sd=4.0, reports=reps, accuracy=acc)
    for sd in sd_values:
        reps, acc = measure(30.0, sd)
        result.add_row(swept="sd", sa_deg=30.0, sd=sd, reports=reps, accuracy=acc)
    return result


def run_fig09(
    n: int = 2500, seed: int = 1, raster: int = ACCURACY_RASTER
) -> ExperimentResult:
    """Fig. 9: report density with filtering off vs the default filter."""
    field = make_harbor_field()
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="fig09",
        title="contour regions under different report densities",
        columns=["filtering", "reports", "accuracy"],
        notes=f"n={n}; 'evenly filtering some of the reports does not degrade the result by much'",
    )
    net = harbor_network(n, "random", seed=seed, field=field)
    for label, cfg in (
        ("off", FilterConfig.disabled()),
        ("sa=30,sd=4", FilterConfig(30.0, 4.0)),
    ):
        iso = run_isomap(net, filter_config=cfg)
        result.add_row(
            filtering=label,
            reports=len(iso.delivered_reports),
            accuracy=mapping_accuracy(field, iso.contour_map, levels, raster, raster),
        )
    return result
