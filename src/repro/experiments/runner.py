"""Parallel sweep driver for the paper experiments.

Every figure sweep has the same shape: a grid of configuration points
(density, field side, failure ratio, ...) crossed with a handful of
deployment seeds, each point running a few protocol epochs and returning
scalar measurements.  The points are independent by construction -- each
one builds its own network from an explicit seed -- so they parallelise
trivially.

This module runs such sweeps through a :class:`ProcessPoolExecutor`
while keeping three guarantees the figure drivers rely on:

- **Determinism**: results come back in submission order regardless of
  worker scheduling, and every point derives its randomness from the
  explicit seed in its kwargs (never from global state), so ``jobs=1``
  and ``jobs=N`` produce byte-identical tables.
- **Purity**: point functions are top-level module functions taking only
  picklable keyword arguments and returning JSON-able dicts.
- **Caching**: with ``cache_dir`` set, each point's result is stored
  under a SHA-256 of (function identity, kwargs); re-running a sweep
  recomputes only missing points.  The cache key deliberately excludes
  anything environmental, so a cache can be shared across machines.

When stage profiling is enabled in the parent process (see
:mod:`repro.profiling`), worker processes run their points with
profiling on and ship a stage snapshot back with each result; the parent
merges the snapshots, so ``--profile`` tables cover all workers.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import profiling

#: A sweep-point function: picklable top-level callable returning a
#: JSON-able dict of measurements for one (configuration, seed) point.
PointFn = Callable[..., Dict[str, Any]]


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work: ``fn(**kwargs)``.

    ``fn`` must be a top-level function (picklable for worker processes)
    and ``kwargs`` must be JSON-serialisable (they form the cache key).
    """

    fn: PointFn
    kwargs: Dict[str, Any]

    def cache_key(self) -> str:
        payload = {
            "fn": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "kwargs": self.kwargs,
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()


def run_sweep(
    points: Sequence[SweepPoint],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Evaluate every point and return the results in submission order.

    Args:
        points: the sweep grid, typically configurations x seeds.
        jobs: worker processes; ``1`` (the default) runs inline in this
            process with no executor at all.
        cache_dir: when set, a directory of per-point JSON result files
            keyed by :meth:`SweepPoint.cache_key`; hits skip computation.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    n = len(points)
    results: List[Optional[Dict[str, Any]]] = [None] * n
    keys: List[Optional[str]] = [None] * n
    todo: List[int] = []

    if cache_dir is not None:
        os.makedirs(cache_dir, exist_ok=True)
        for i, point in enumerate(points):
            keys[i] = point.cache_key()
            cached = _cache_load(cache_dir, keys[i])
            if cached is not None:
                results[i] = cached
            else:
                todo.append(i)
    else:
        todo = list(range(n))

    if jobs == 1 or len(todo) <= 1:
        for i in todo:
            results[i] = points[i].fn(**points[i].kwargs)
    elif profiling.is_enabled():
        with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
            futures = [
                (i, pool.submit(_invoke_profiled, points[i].fn, points[i].kwargs))
                for i in todo
            ]
            for i, fut in futures:
                results[i], snap = fut.result()
                profiling.merge_snapshot(snap)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
            futures = [
                (i, pool.submit(_invoke, points[i].fn, points[i].kwargs))
                for i in todo
            ]
            for i, fut in futures:
                results[i] = fut.result()

    if cache_dir is not None:
        for i in todo:
            _cache_store(cache_dir, keys[i], points[i], results[i])
    return results  # type: ignore[return-value]


def grid_points(
    fn: PointFn,
    configs: Sequence[Dict[str, Any]],
    seeds: Sequence[int],
) -> List[SweepPoint]:
    """The standard sweep grid: every config crossed with every seed.

    Points are ordered config-major, seed-minor -- the same nesting as
    the original serial loops -- so grouping the flat result list back
    with :func:`group_by_config` reproduces the serial accumulation
    order (and therefore the exact same float sums).
    """
    return [
        SweepPoint(fn, {**cfg, "seed": seed}) for cfg in configs for seed in seeds
    ]


def group_by_config(
    results: Sequence[Dict[str, Any]], n_seeds: int
) -> List[List[Dict[str, Any]]]:
    """Chunk a flat config-major result list back into per-config groups."""
    if n_seeds < 1:
        raise ValueError("n_seeds must be >= 1")
    if len(results) % n_seeds:
        raise ValueError("result count is not a multiple of the seed count")
    return [
        list(results[i : i + n_seeds]) for i in range(0, len(results), n_seeds)
    ]


def seed_mean(group: Sequence[Dict[str, Any]], key: str) -> float:
    """``sum(...) / k`` over one config's seed group, in seed order.

    Matches the serial drivers' accumulation arithmetic exactly (Python
    left-to-right ``sum``), which is what keeps parallel tables
    byte-identical to serial ones.
    """
    return sum(r[key] for r in group) / len(group)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _invoke(fn: PointFn, kwargs: Dict[str, Any]) -> Dict[str, Any]:
    return fn(**kwargs)


def _invoke_profiled(fn: PointFn, kwargs: Dict[str, Any]):
    """Worker-side wrapper: run the point with profiling on and return
    ``(result, stage snapshot)`` for the parent to merge.

    Workers are fresh processes (or at least ran other points through
    this same wrapper), so the snapshot is reset per point to avoid
    double-counting when an executor reuses a worker.
    """
    profiling.reset()
    profiling.enable()
    try:
        result = fn(**kwargs)
    finally:
        profiling.disable()
    return result, profiling.snapshot()


def _cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"{key}.json")


def _cache_load(cache_dir: str, key: str) -> Optional[Dict[str, Any]]:
    path = _cache_path(cache_dir, key)
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)["result"]
    except (OSError, ValueError, KeyError):
        return None  # missing or corrupt entry -> recompute


def _cache_store(
    cache_dir: str, key: str, point: SweepPoint, result: Dict[str, Any]
) -> None:
    entry = {
        "fn": f"{point.fn.__module__}.{point.fn.__qualname__}",
        "kwargs": point.kwargs,
        "result": result,
    }
    path = _cache_path(cache_dir, key)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(entry, f, sort_keys=True)
    os.replace(tmp, path)
