"""Traffic vs staleness vs accuracy for model-predictive suppression.

The predictor bank (:mod:`repro.core.prediction`) lets a source skip its
report whenever the sink's mirrored dead-reckoning model already lands
within tolerance of the truth; the heartbeat cap bounds how long any
track may coast.  This sweep quantifies the three-way trade the knob
buys.  For each (scenario, tolerance) it runs the serving layer's
deterministic deployment + field timeline twice from the same seed --
prediction off (baseline) and prediction on -- and reports

- **traffic**: delivered reports per epoch and total radio bytes, both
  as baseline/predicted ratios over the warm window (the cold-start and
  LMS warm-up epochs are excluded, as every track must be delivered
  once before it can be predicted);
- **staleness**: suppressed-in-a-row maximum actually observed (always
  ``<= heartbeat`` by construction) and the heartbeat-forced share of
  deliveries;
- **accuracy**: the Hausdorff *penalty* -- mean over warm epochs of
  (predicted map's Hausdorff to the true isolines) minus (baseline
  map's), reported in field units and in grid cells of the
  sqrt(n)-resolution raster (one cell per sensor column, the densest
  structure the deployment can resolve).

Scenarios are the serving layer's deterministic timelines
(``steady``/``tide``/``storm``/``pulse``) plus the moving ``front`` --
rigid translation at 2.5% of span per epoch, the canonical steady-drift
workload the committed acceptance point uses (re-measured by
``benchmarks/bench_predict.py``).  Tolerance 0 would suppress nothing;
the committed point is tolerance 1.1 on ``front``, where the delivered
reduction clears 2x with the penalty inside one grid cell.

Runs through the parallel sweep runner (``--jobs``/``--cache``).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.experiments.runner import (
    grid_points,
    group_by_config,
    run_sweep,
    seed_mean,
)

#: Epochs per timeline; long enough for the front to keep moving across
#: the whole warm window.
EPOCHS = 12

#: First epoch of the warm measurement window (cold start is epoch 1;
#: the LMS needs a couple of deliveries per track to learn the drift).
WARM = 4

SCENARIOS = ("steady", "tide", "storm", "pulse", "front")
TOLERANCES = (0.55, 1.1, 2.2)


def predict_point(
    scenario: str,
    tolerance: float,
    n: int,
    seed: int,
    epochs: int = EPOCHS,
    heartbeat: int = 8,
) -> Dict[str, Any]:
    """One sweep point: paired off/on session timelines on one seed.

    Imports stay inside the point function so sweep workers only pay
    for what they use (the runner pickles the function reference).
    """
    from repro.metrics.hausdorff import mean_isoline_hausdorff
    from repro.serving.session import SessionCompute, SessionConfig, field_for_epoch

    kw = dict(n_nodes=n, seed=seed, scenario=scenario)
    base = SessionCompute(SessionConfig(query_id="fig-predict-base", **kw))
    pred = SessionCompute(
        SessionConfig(
            query_id="fig-predict-on",
            prediction_tolerance=tolerance,
            prediction_heartbeat=heartbeat,
            **kw,
        )
    )
    levels = base.query.isolevels
    bounds = field_for_epoch(base.config, 0).bounds
    cell = (bounds.xmax - bounds.xmin) / math.ceil(math.sqrt(n))

    warm = min(WARM, epochs)  # short smoke timelines measure their tail
    reports_base = reports_pred = 0
    bytes_base = bytes_pred = 0
    predicted = heartbeats = 0
    staleness_max = 0
    penalties = []
    for epoch in range(1, epochs + 1):
        field_now = field_for_epoch(base.config, epoch)
        base.network.resense(field_now)
        rb = base.monitor.epoch(base.network)
        pred.network.resense(field_now)
        rp = pred.monitor.epoch(pred.network)
        staleness_max = max(staleness_max, rp.staleness)
        if epoch < warm:
            continue
        reports_base += len(rb.delivered_reports)
        reports_pred += len(rp.delivered_reports)
        bytes_base += rb.costs.total_traffic_bytes()
        bytes_pred += rp.costs.total_traffic_bytes()
        predicted += rp.predicted
        heartbeats += rp.heartbeats
        hb = mean_isoline_hausdorff(field_now, rb.contour_map, levels)
        hp = mean_isoline_hausdorff(field_now, rp.contour_map, levels)
        if hb is not None and hp is not None:
            penalties.append(hp - hb)

    warm_epochs = epochs - warm + 1
    penalty = sum(penalties) / len(penalties) if penalties else 0.0
    return {
        "reports_base": reports_base / warm_epochs,
        "reports_pred": reports_pred / warm_epochs,
        "traffic_base_kb": bytes_base / 1024.0,
        "traffic_pred_kb": bytes_pred / 1024.0,
        "predicted": predicted / warm_epochs,
        "heartbeats": heartbeats / warm_epochs,
        "staleness_max": float(staleness_max),
        "penalty": penalty,
        "penalty_cells": penalty / cell,
    }


def run_fig_predict(
    seeds: Sequence[int] = (7,),
    n: int = 600,
    epochs: int = EPOCHS,
    scenarios: Sequence[str] = SCENARIOS,
    tolerances: Sequence[float] = TOLERANCES,
    heartbeat: int = 8,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Delivered-report reduction vs staleness vs Hausdorff penalty.

    ``n=600``/seed 7 is the committed measurement density (the bench
    re-checks the front scenario at tolerance 1.1 against the 2x / one
    grid cell gate).  Reduction grows with tolerance while the penalty
    stays near the tolerance itself; staleness_max never exceeds the
    heartbeat.
    """
    configs = [
        {
            "scenario": s,
            "tolerance": t,
            "n": n,
            "epochs": epochs,
            "heartbeat": heartbeat,
        }
        for s in scenarios
        for t in tolerances
    ]
    results = run_sweep(
        grid_points(predict_point, configs, list(seeds)), jobs, cache_dir
    )
    table = ExperimentResult(
        experiment_id="fig_predict",
        title="model-predictive suppression: traffic vs staleness vs accuracy",
        columns=[
            "scenario",
            "tolerance",
            "reports_base",
            "reports_pred",
            "reduction",
            "traffic_base_kb",
            "traffic_pred_kb",
            "predicted",
            "heartbeats",
            "staleness_max",
            "penalty",
            "penalty_cells",
        ],
        notes=(
            f"n={n}, seeds={list(seeds)}, epochs={epochs}, "
            f"heartbeat={heartbeat}; warm window starts at epoch {WARM}; "
            "reports_* are delivered reports per warm epoch, reduction = "
            "base/pred; penalty = mean warm-epoch Hausdorff(pred) - "
            "Hausdorff(base) vs the true isolines, one cell = "
            "span/ceil(sqrt(n))"
        ),
    )
    for cfg, group in zip(configs, group_by_config(results, len(seeds))):
        rb = seed_mean(group, "reports_base")
        rp = seed_mean(group, "reports_pred")
        table.add_row(
            scenario=cfg["scenario"],
            tolerance=cfg["tolerance"],
            reports_base=rb,
            reports_pred=rp,
            reduction=rb / rp if rp else float("inf"),
            traffic_base_kb=seed_mean(group, "traffic_base_kb"),
            traffic_pred_kb=seed_mean(group, "traffic_pred_kb"),
            predicted=seed_mean(group, "predicted"),
            heartbeats=seed_mean(group, "heartbeats"),
            staleness_max=seed_mean(group, "staleness_max"),
            penalty=seed_mean(group, "penalty"),
            penalty_cells=seed_mean(group, "penalty_cells"),
        )
    return table
