"""Fault sweep: fidelity and energy vs fault intensity, defenses on/off.

The paper evaluates failures only as a static pre-epoch sensing-failure
ratio (Figs. 11b/12b) over a perfect link layer.  This extension sweeps
the :class:`~repro.network.faults.FaultPlan` intensity knob -- mid-epoch
crashes, Gilbert-Elliott burst loss, frame corruption and duplication,
all applied *during* collection -- with the transport defenses
(ARQ + CRC + dedup + local re-parenting) either all on or all off, for
Iso-Map and three representative baselines.  Every protocol at a given
(intensity, seed) sees the *same* fault schedule on its deployment, so
the comparison is apples-to-apples.

Three things to read off the table:

- delivery rate and accuracy fall with intensity for everyone, but the
  defended transport holds them far longer for the same fault load;
- the defense price shows up as energy (retransmissions, duplicate
  frames, backoff, repair traffic) -- graceful degradation is not free;
- with defenses off, ``corrupted_accepted`` > 0: the map silently
  ingests poisoned reports instead of degrading visibly, which is the
  failure mode the ROADMAP's north star rules out.

Runs through the parallel sweep runner: honours ``--jobs`` and
``--cache`` like every other ported sweep.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.baselines import INLRProtocol, TinyDBProtocol
from repro.baselines.isoline_agg import IsolineAggregationProtocol
from repro.core import IsoMapProtocol
from repro.energy import energy_from_costs
from repro.experiments.common import (
    ACCURACY_RASTER,
    PAPER_FILTER,
    PAPER_QUERY,
    ExperimentResult,
    default_levels,
    harbor_network,
)
from repro.experiments.runner import (
    grid_points,
    group_by_config,
    run_sweep,
    seed_mean,
)
from repro.field import make_harbor_field
from repro.metrics import mapping_accuracy
from repro.network.faults import FaultPlan
from repro.network.transport import TransportConfig

#: Fault-intensity sweep points (1.0 = the moderate all-sources-on plan:
#: 10% mid-epoch crash, burst loss p_bad=0.3, 1% corruption/duplication).
DEFAULT_INTENSITIES = (0.0, 0.25, 0.5, 1.0)

#: Protocols compared, with the deployment each requires.
_PROTOCOLS = ("iso-map", "isoline-agg", "tinydb", "inlr")


def _config(defenses: str) -> TransportConfig:
    if defenses == "on":
        return TransportConfig.hardened()
    if defenses == "off":
        return TransportConfig.vanilla()
    raise ValueError(f"unknown defenses setting {defenses!r}")


def faults_point(
    intensity: float, defenses: str, n: int, seed: int, radio_range: float = 1.5
) -> Dict[str, Any]:
    """One sweep point: all protocols under one fault plan on one seed."""
    field = make_harbor_field()
    levels = default_levels()
    plan = FaultPlan.at_intensity(intensity, seed=seed)
    config = _config(defenses)
    random_net = harbor_network(
        n, "random", seed=seed, radio_range=radio_range, field=field
    )
    grid_net = harbor_network(
        n, "grid", seed=seed, radio_range=radio_range, field=field
    )

    runs = []
    iso = IsoMapProtocol(
        PAPER_QUERY, PAPER_FILTER, fault_plan=plan, transport_config=config
    ).run(random_net)
    runs.append(("iso-map", iso.contour_map, iso.costs, iso.degradation))
    for name, proto, net in (
        (
            "isoline-agg",
            IsolineAggregationProtocol(
                PAPER_QUERY, fault_plan=plan, transport_config=config
            ),
            random_net,
        ),
        (
            "tinydb",
            TinyDBProtocol(levels, fault_plan=plan, transport_config=config),
            grid_net,
        ),
        (
            "inlr",
            INLRProtocol(levels, fault_plan=plan, transport_config=config),
            grid_net,
        ),
    ):
        run = proto.run(net)
        runs.append((name, run.band_map, run.costs, run.degradation))

    out: Dict[str, Any] = {}
    for name, band_map, costs, degradation in runs:
        assert degradation.is_conserved, f"{name}: unaccounted report instances"
        out[f"{name}.delivery_rate"] = degradation.delivery_rate()
        out[f"{name}.accuracy"] = mapping_accuracy(
            field, band_map, levels, ACCURACY_RASTER, ACCURACY_RASTER
        )
        out[f"{name}.energy_mj"] = energy_from_costs(costs).per_node_mean_mj()
        out[f"{name}.retransmissions"] = float(degradation.retransmissions)
        out[f"{name}.repaired_orphans"] = float(degradation.repaired_orphans)
        out[f"{name}.corrupted_accepted"] = float(degradation.corrupted_accepted)
    return out


def run_fig_faults(
    seeds: Sequence[int] = (1,),
    n: int = 2500,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    radio_range: float = 1.5,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Fidelity + energy vs fault intensity, defenses on vs off.

    The defaults are the paper's main operating point (n=2500, range
    1.5); smaller ``n`` on the 50x50 harbor field needs a larger
    ``radio_range`` to keep the deployment connected (density scaling,
    as in fig07's reduced runs).
    """
    configs = [
        {
            "intensity": float(i),
            "defenses": d,
            "n": n,
            "radio_range": radio_range,
        }
        for i in intensities
        for d in ("on", "off")
    ]
    results = run_sweep(
        grid_points(faults_point, configs, list(seeds)), jobs, cache_dir
    )
    table = ExperimentResult(
        experiment_id="fig_faults",
        title="degradation under mid-epoch faults (defenses on/off)",
        columns=[
            "intensity",
            "defenses",
            "protocol",
            "delivery_rate",
            "accuracy",
            "energy_mj",
            "retransmissions",
            "repaired_orphans",
            "corrupted_accepted",
        ],
        notes=(
            f"n={n}, seeds={list(seeds)}; intensity 1.0 = 10% mid-epoch "
            "crash + GE burst loss (p_bad 0.3) + 1% corruption + 1% "
            "duplication; defenses = ARQ + CRC + dedup + local re-parenting"
        ),
    )
    for cfg, group in zip(configs, group_by_config(results, len(seeds))):
        for protocol in _PROTOCOLS:
            table.add_row(
                intensity=cfg["intensity"],
                defenses=cfg["defenses"],
                protocol=protocol,
                delivery_rate=seed_mean(group, f"{protocol}.delivery_rate"),
                accuracy=seed_mean(group, f"{protocol}.accuracy"),
                energy_mj=seed_mean(group, f"{protocol}.energy_mj"),
                retransmissions=seed_mean(group, f"{protocol}.retransmissions"),
                repaired_orphans=seed_mean(
                    group, f"{protocol}.repaired_orphans"
                ),
                corrupted_accepted=seed_mean(
                    group, f"{protocol}.corrupted_accepted"
                ),
            )
    return table
