"""Fidelity vs bytes-to-client for the SIMPLIFIED serving stream.

The serving layer can ship a subscriber the tolerance-bounded record
subset instead of the full sink cache (wire version 2, negotiated per
subscriber -- :func:`repro.serving.wire.select_simplified_records`).
This sweep quantifies the trade the knob buys: for each scenario and
tolerance it runs the *actual* session pipeline
(:class:`~repro.serving.session.SessionCompute`, both streams produced
side by side) over an epoch timeline and reports

- **bytes to client**: the plain vs simplified cumulative delta-stream
  bytes a from-epoch-0 subscriber receives, and the final snapshot
  sizes a late joiner would fetch;
- **fidelity**: the *measured* Hausdorff deviation -- the maximum
  distance from any full-stream record position to the retained span of
  its own isoline chain (the exact quantity the simplifier's
  per-segment guarantee bounds by the tolerance), reported both in
  field units and in grid cells of the session's 50-raster map so
  "within one grid cell" is checkable at a glance.

Tolerance 0 is the passthrough differential (ratio 1.0, deviation 0);
the committed acceptance point is the steady harbor scenario at
tolerance 1.0, where the byte ratio clears 5x with the deviation inside
one grid cell (re-measured by ``benchmarks/bench_simplify.py``).

Runs through the parallel sweep runner (``--jobs``/``--cache``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.experiments.runner import (
    grid_points,
    group_by_config,
    run_sweep,
    seed_mean,
)

#: Epochs per timeline (enough to catch the storm ramp at epoch 3 and a
#: good stretch of tide drift).
EPOCHS = 6

#: Raster the serving map is judged on: 50x50 over the 50-unit harbor
#: field, i.e. one grid cell = one field unit.
RASTER = 50

SCENARIOS = ("steady", "tide", "storm")
TOLERANCES = (0.0, 0.25, 0.5, 1.0, 2.0)


def simplify_point(
    scenario: str,
    tolerance: float,
    n: int,
    seed: int,
    epochs: int = EPOCHS,
    radio_range: float = 1.5,
) -> Dict[str, Any]:
    """One sweep point: a session timeline at one (scenario, tolerance).

    Imports stay inside the point function so sweep workers only pay
    for what they use (the runner pickles the function reference).
    """
    from repro.serving.session import SessionCompute, SessionConfig, field_for_epoch
    from repro.serving.wire import (
        encode_snapshot,
        select_simplified_records,
        simplified_selection_stats,
    )

    config = SessionConfig(
        query_id=f"fig-simplify-{scenario}",
        n_nodes=n,
        seed=seed,
        field="harbor",
        scenario=scenario,
        value_lo=6.0,
        value_hi=12.0,
        granularity=2.0,
        epsilon_fraction=0.05,
        radio_range=radio_range,
        simplify_tolerance=tolerance,
    )
    compute = SessionCompute(config)
    bytes_plain = 0
    bytes_simplified = 0
    snapshot_plain = snapshot_simplified = b""
    state: tuple = ()
    for epoch in range(1, epochs + 1):
        out = compute.epoch(epoch)
        bytes_plain += len(out["delta"])
        bytes_simplified += len(out["s_delta"])
        state = out["records"]
        # What a late joiner fetches at the final epoch: the rendered
        # snapshot of each stream's record state (what the store serves).
        snapshot_plain = encode_snapshot(epoch, out["records"], out["sink"])
        snapshot_simplified = encode_snapshot(
            epoch, out["s_records"], out["sink"]
        )

    stats = simplified_selection_stats(
        state, compute.codec.dequantize_position, tolerance
    )
    kept = select_simplified_records(
        state, compute.codec.dequantize_position, tolerance
    )
    bounds = field_for_epoch(config, 0).bounds
    cell = (bounds.xmax - bounds.xmin) / RASTER
    return {
        "records_full": float(stats["records_full"]),
        "records_kept": float(len(kept)),
        "delta_bytes_plain": float(bytes_plain),
        "delta_bytes_simplified": float(bytes_simplified),
        "snapshot_bytes_plain": float(len(snapshot_plain)),
        "snapshot_bytes_simplified": float(len(snapshot_simplified)),
        "hausdorff_dev": float(stats["max_deviation"]),
        "hausdorff_cells": float(stats["max_deviation"]) / cell,
    }


def run_fig_simplify(
    seeds: Sequence[int] = (1,),
    n: int = 5000,
    epochs: int = EPOCHS,
    scenarios: Sequence[str] = SCENARIOS,
    tolerances: Sequence[float] = TOLERANCES,
    radio_range: float = 1.5,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Bytes-to-client and measured Hausdorff deviation vs tolerance.

    ``n=5000`` is the serving density the committed numbers use: record
    reduction grows with node density (denser isoline sampling leaves
    more droppable interior vertices), and at 5000 nodes the steady
    scenario clears the 5x byte-ratio acceptance bar with the deviation
    inside one grid cell.
    """
    configs = [
        {
            "scenario": s,
            "tolerance": t,
            "n": n,
            "epochs": epochs,
            "radio_range": radio_range,
        }
        for s in scenarios
        for t in tolerances
    ]
    results = run_sweep(
        grid_points(simplify_point, configs, list(seeds)), jobs, cache_dir
    )
    table = ExperimentResult(
        experiment_id="fig_simplify",
        title="SIMPLIFIED stream: fidelity vs bytes to client",
        columns=[
            "scenario",
            "tolerance",
            "records_full",
            "records_kept",
            "delta_bytes_plain",
            "delta_bytes_simplified",
            "bytes_ratio",
            "snapshot_bytes_plain",
            "snapshot_bytes_simplified",
            "hausdorff_dev",
            "hausdorff_cells",
        ],
        notes=(
            f"n={n}, seeds={list(seeds)}, epochs={epochs}; harbor field, "
            f"one grid cell = 1 field unit ({RASTER}-raster); "
            "hausdorff_dev is MEASURED (max record distance to the "
            "retained span of its chain), guaranteed <= tolerance; "
            "bytes_ratio = plain/simplified cumulative delta bytes"
        ),
    )
    for cfg, group in zip(configs, group_by_config(results, len(seeds))):
        plain = seed_mean(group, "delta_bytes_plain")
        simplified = seed_mean(group, "delta_bytes_simplified")
        table.add_row(
            scenario=cfg["scenario"],
            tolerance=cfg["tolerance"],
            records_full=seed_mean(group, "records_full"),
            records_kept=seed_mean(group, "records_kept"),
            delta_bytes_plain=plain,
            delta_bytes_simplified=simplified,
            bytes_ratio=plain / simplified if simplified else 1.0,
            snapshot_bytes_plain=seed_mean(group, "snapshot_bytes_plain"),
            snapshot_bytes_simplified=seed_mean(
                group, "snapshot_bytes_simplified"
            ),
            hausdorff_dev=seed_mean(group, "hausdorff_dev"),
            hausdorff_cells=seed_mean(group, "hausdorff_cells"),
        )
    return table
