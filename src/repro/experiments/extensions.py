"""Extension experiments: beyond the paper's evaluation.

- :func:`run_lossy_links` -- the cost of the "perfect link layer"
  assumption: delivery rate and per-node energy under per-hop loss with
  MAC retransmissions (the mechanism the paper cites to justify the
  assumption).
- :func:`run_continuous_monitoring` -- epoch-delta Iso-Map over a
  multi-epoch drift scenario (the harbor's tides-then-storm timeline),
  versus re-running the snapshot protocol every epoch.
- :func:`run_localized_isomap` -- Iso-Map on positions from the
  distributed localization substrate (DV-hop + range refinement) instead
  of GPS, swept over the anchor fraction.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import FilterConfig, IsoMapProtocol
from repro.core.continuous import ContinuousIsoMap
from repro.energy import energy_from_costs
from repro.experiments.common import (
    ExperimentResult,
    PAPER_FILTER,
    PAPER_QUERY,
    default_levels,
    harbor_network,
)
from repro.field import CompositeField, GaussianBumpField, make_harbor_field
from repro.metrics import mapping_accuracy
from repro.network.links import LossyLinkModel
from repro.network.localization import clear_localization, localize


def run_lossy_links(
    n: int = 2500,
    loss_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    max_retries: int = 3,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Delivery and energy under per-hop loss, with and without ARQ."""
    field = make_harbor_field()
    result = ExperimentResult(
        experiment_id="ext_lossy_links",
        title="lossy links: delivery rate and per-node energy",
        columns=[
            "loss_rate",
            "delivered_no_arq",
            "delivered_arq",
            "energy_mj_no_arq",
            "energy_mj_arq",
        ],
        notes=f"n={n}, ARQ budget {max_retries} retries; delivered relative to lossless",
    )
    for loss in loss_rates:
        per = {"d0": [], "d1": [], "e0": [], "e1": []}
        for seed in seeds:
            net = harbor_network(n, "random", seed=seed, field=field)
            baseline = IsoMapProtocol(PAPER_QUERY, PAPER_FILTER).run(net)
            base_count = max(1, len(baseline.delivered_reports))
            configs = (
                ("0", LossyLinkModel(1.0 - loss, 0) if loss > 0 else None),
                ("1", LossyLinkModel(1.0 - loss, max_retries) if loss > 0 else None),
            )
            for tag, model in configs:
                iso = IsoMapProtocol(
                    PAPER_QUERY, PAPER_FILTER, link_model=model, link_seed=seed
                ).run(net)
                per["d" + tag].append(len(iso.delivered_reports) / base_count)
                per["e" + tag].append(
                    energy_from_costs(iso.costs).per_node_mean_mj()
                )
        k = len(seeds)
        result.add_row(
            loss_rate=loss,
            delivered_no_arq=sum(per["d0"]) / k,
            delivered_arq=sum(per["d1"]) / k,
            energy_mj_no_arq=sum(per["e0"]) / k,
            energy_mj_arq=sum(per["e1"]) / k,
        )
    return result


def run_continuous_monitoring(
    n: int = 2500,
    epochs: int = 6,
    seed: int = 1,
    raster: int = 60,
) -> ExperimentResult:
    """Epoch-delta monitoring through a drift-then-storm timeline.

    Epochs 0-2: calm field (steady state).  Epoch 3: a storm deposits a
    silt mound on the channel.  Epochs 4-5: the new steady state.  The
    continuous monitor's per-epoch report traffic is compared with
    re-running the snapshot protocol (unfiltered, so both carry the same
    information) each epoch.
    """
    calm = make_harbor_field()
    storm = CompositeField(
        calm.bounds,
        [calm, GaussianBumpField(calm.bounds, 0.0, [(-3.0, (28.0, 26.0), 4.0)])],
    )
    levels = default_levels()
    net = harbor_network(n, "random", seed=seed, field=calm)
    monitor = ContinuousIsoMap(PAPER_QUERY)
    snapshot = IsoMapProtocol(PAPER_QUERY, FilterConfig.disabled())

    result = ExperimentResult(
        experiment_id="ext_continuous",
        title="continuous (delta) vs snapshot per-epoch traffic",
        columns=[
            "epoch",
            "event",
            "delta_kb",
            "snapshot_kb",
            "delta_reports",
            "delta_accuracy",
        ],
        notes=f"n={n}; storm hits at epoch 3",
    )
    for epoch in range(epochs):
        event = "calm"
        if epoch == 3:
            net.resense(storm)
            event = "storm"
        elif epoch > 3:
            event = "post-storm"
        field_now = storm if epoch >= 3 else calm

        delta = monitor.epoch(net)
        snap = snapshot.run(net)
        result.add_row(
            epoch=epoch,
            event=event,
            delta_kb=delta.costs.total_traffic_kb(),
            snapshot_kb=snap.costs.total_traffic_kb(),
            delta_reports=len(delta.new_reports),
            delta_accuracy=mapping_accuracy(
                field_now, delta.contour_map, levels, raster, raster
            ),
        )
    return result


def run_localized_isomap(
    n: int = 2500,
    anchor_fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.4),
    range_noise: float = 0.05,
    seeds: Sequence[int] = (1, 2),
    raster: int = 60,
) -> ExperimentResult:
    """Iso-Map on localized (not GPS) positions, vs the anchor budget.

    Runs the DV-hop + refinement substrate, feeds its estimates into the
    application's position fields, and measures the resulting contour
    map against GPS-truth ground.  The localisation error a given anchor
    budget buys translates directly into mapping accuracy (compare the
    position-noise ablation).
    """
    import random as _random

    field = make_harbor_field()
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="ext_localization",
        title="Iso-Map on distributed localization vs anchor fraction",
        columns=[
            "anchor_fraction",
            "loc_mean_err",
            "loc_median_err",
            "coverage",
            "accuracy",
            "accuracy_gps",
        ],
        notes=f"n={n}, {range_noise:.0%} ranging noise, DV-hop + 30 GN sweeps",
    )
    for frac in anchor_fractions:
        per = {"err": [], "med": [], "cov": [], "acc": [], "gps": []}
        for seed in seeds:
            net = harbor_network(n, "random", seed=seed, field=field)
            gps = IsoMapProtocol(PAPER_QUERY, PAPER_FILTER).run(net)
            per["gps"].append(
                mapping_accuracy(field, gps.contour_map, levels, raster, raster)
            )
            loc = localize(
                net,
                anchor_fraction=frac,
                range_noise=range_noise,
                rng=_random.Random(seed + 100),
            )
            iso = IsoMapProtocol(PAPER_QUERY, PAPER_FILTER).run(net)
            clear_localization(net)
            per["err"].append(loc.mean_error)
            ordered = sorted(loc.errors)
            per["med"].append(ordered[len(ordered) // 2] if ordered else 0.0)
            per["cov"].append(loc.coverage)
            per["acc"].append(
                mapping_accuracy(field, iso.contour_map, levels, raster, raster)
            )
        k = len(seeds)
        result.add_row(
            anchor_fraction=frac,
            loc_mean_err=sum(per["err"]) / k,
            loc_median_err=sum(per["med"]) / k,
            coverage=sum(per["cov"]) / k,
            accuracy=sum(per["acc"]) / k,
            accuracy_gps=sum(per["gps"]) / k,
        )
    return result


def run_epoch_latency(
    n: int = 2500,
    sides: Sequence[int] = (15, 25, 35, 50),
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Collection-epoch latency under the TAG slotted schedule.

    A derived quantity the paper leaves implicit: with one slot per tree
    level and spatial-reuse TDMA inside each slot, how long does one
    contour-mapping epoch occupy the channel?  Iso-Map's thin report
    stream drains in a fraction of the full-collection protocols' time --
    latency tracks the funnel airtime near the sink.
    """
    from repro.baselines import INLRProtocol, TinyDBProtocol
    from repro.experiments.fig14_traffic import _scaled_harbor
    from repro.network.schedule import epoch_latency

    levels = default_levels()
    result = ExperimentResult(
        experiment_id="ext_latency",
        title="collection-epoch latency (s) vs network size",
        columns=["field_side", "n_nodes", "isomap_s", "tinydb_s", "inlr_s"],
        notes="one slot per tree level, spatial-reuse TDMA, CC1000 38.4 kbps",
    )
    for side in sides:
        n_side = side * side
        field = _scaled_harbor(side)
        per = {"iso": [], "tdb": [], "inl": []}
        for seed in seeds:
            rn = harbor_network(n_side, "random", seed=seed, field=field)
            iso = IsoMapProtocol(PAPER_QUERY, PAPER_FILTER).run(rn)
            per["iso"].append(epoch_latency(rn, iso.costs).epoch_seconds)
            gn = harbor_network(n_side, "grid", seed=seed, field=field)
            tdb = TinyDBProtocol(levels).run(gn)
            per["tdb"].append(epoch_latency(gn, tdb.costs).epoch_seconds)
            inl = INLRProtocol(levels).run(gn)
            per["inl"].append(epoch_latency(gn, inl.costs).epoch_seconds)
        k = len(seeds)
        result.add_row(
            field_side=side,
            n_nodes=n_side,
            isomap_s=sum(per["iso"]) / k,
            tinydb_s=sum(per["tdb"]) / k,
            inlr_s=sum(per["inl"]) / k,
        )
    return result


def run_network_lifetime(
    n: int = 2500,
    battery_j: float = 5.0,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Network lifetime under periodic contour mapping.

    The classic WSN metric the paper's energy argument implies: with a
    fixed battery per node, how many mapping epochs until (a) the first
    node dies (the hotspot bound -- nodes adjacent to the sink relay
    everything) and (b) the average node would die.  Derived
    deterministically from one epoch's per-node energy, since the
    protocols are stateless across epochs.
    """
    from repro.baselines import INLRProtocol, TinyDBProtocol

    field = make_harbor_field()
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="ext_lifetime",
        title="mapping epochs until node exhaustion",
        columns=[
            "protocol",
            "epochs_first_death",
            "epochs_mean_node",
            "hotspot_ratio",
        ],
        notes=f"n={n}, {battery_j} J per node; hotspot ratio = max/mean per-node energy",
    )
    runs = {"iso-map": [], "tinydb": [], "inlr": []}
    for seed in seeds:
        rn = harbor_network(n, "random", seed=seed, field=field)
        runs["iso-map"].append(
            energy_from_costs(IsoMapProtocol(PAPER_QUERY, PAPER_FILTER).run(rn).costs)
        )
        gn = harbor_network(n, "grid", seed=seed, field=field)
        runs["tinydb"].append(
            energy_from_costs(TinyDBProtocol(levels).run(gn).costs)
        )
        runs["inlr"].append(energy_from_costs(INLRProtocol(levels).run(gn).costs))
    for name, reports in runs.items():
        first = sum(battery_j / r.per_node_max_j for r in reports) / len(reports)
        mean = sum(battery_j / r.per_node_mean_j for r in reports) / len(reports)
        ratio = sum(r.per_node_max_j / r.per_node_mean_j for r in reports) / len(
            reports
        )
        result.add_row(
            protocol=name,
            epochs_first_death=first,
            epochs_mean_node=mean,
            hotspot_ratio=ratio,
        )
    return result


def run_sink_placement(
    n: int = 2500,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Sink placement: centre vs corner.

    The collection tree funnels every report through the sink's
    neighbourhood, so the sink's position shapes both the path lengths
    (total traffic) and the hotspot (max per-node energy).  A corner
    sink roughly doubles the mean hop count and deepens the funnel --
    the deployment guidance a harbor operator would want.
    """
    field = make_harbor_field()
    result = ExperimentResult(
        experiment_id="ext_sink_placement",
        title="sink placement: centre vs corner",
        columns=[
            "placement",
            "diameter_hops",
            "traffic_kb",
            "hotspot_max_mj",
            "mean_mj",
        ],
        notes=f"n={n}, Iso-Map at the paper's operating point",
    )
    for placement in ("centre", "corner"):
        per = {"d": [], "t": [], "h": [], "m": []}
        for seed in seeds:
            net = harbor_network(n, "random", seed=seed, field=field)
            if placement == "corner":
                corner = (net.bounds.xmin, net.bounds.ymin)
                from repro.geometry import dist

                sink = min(
                    range(net.n_nodes),
                    key=lambda i: dist(net.nodes[i].position, corner),
                )
                net.sink_index = sink
                net.rebuild_tree()
            iso = IsoMapProtocol(PAPER_QUERY, PAPER_FILTER).run(net)
            energy = energy_from_costs(iso.costs)
            per["d"].append(net.diameter_hops)
            per["t"].append(iso.costs.total_traffic_kb())
            per["h"].append(energy.per_node_max_j * 1e3)
            per["m"].append(energy.per_node_mean_j * 1e3)
        k = len(seeds)
        result.add_row(
            placement=placement,
            diameter_hops=sum(per["d"]) / k,
            traffic_kb=sum(per["t"]) / k,
            hotspot_max_mj=sum(per["h"]) / k,
            mean_mj=sum(per["m"]) / k,
        )
    return result
