"""Fig. 10: contour maps of TinyDB and Iso-Map at three node densities.

The paper renders the maps at normalised densities 4, 1 and 0.16 (10000,
2500 and 400 nodes on the 50 x 50 field) and reports the isoline reports
received at the sink: 112, 89 and 49 with sa = 30 deg, sd = 4.  The
reproduction returns, per density, both protocols' delivered report count
and mapping accuracy, plus the rasters the example scripts render.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.baselines import TinyDBProtocol
from repro.experiments.common import (
    ACCURACY_RASTER,
    ExperimentResult,
    default_levels,
    harbor_network,
    radio_range_for_density,
    run_isomap,
)
from repro.field import make_harbor_field
from repro.field.contours import classify_raster
from repro.metrics import mapping_accuracy

#: The paper's three density operating points (on the 50 x 50 field).
DEFAULT_DENSITIES: Sequence[Tuple[float, int]] = ((4.0, 10000), (1.0, 2500), (0.16, 400))


def run_fig10(
    densities: Sequence[Tuple[float, int]] = DEFAULT_DENSITIES,
    seed: int = 1,
    raster: int = ACCURACY_RASTER,
    collect_rasters: bool = False,
) -> ExperimentResult:
    """Run both protocols at each density.

    With ``collect_rasters`` the result gains a ``rasters`` attribute:
    ``{(protocol, density): ndarray}`` plus the ground truth, which the
    quickstart example renders as ASCII maps (the paper's visual panels).
    """
    field = make_harbor_field()
    levels = default_levels()
    result = ExperimentResult(
        experiment_id="fig10",
        title="contour maps under different node densities",
        columns=["density", "n_nodes", "protocol", "reports_at_sink", "accuracy"],
        notes=(
            "sa=30deg sd=4 (paper: 112/89/49 Iso-Map reports at densities "
            "4/1/0.16); radio range scaled below density 1 to preserve the "
            "paper's connectivity regime"
        ),
    )
    rasters: Dict[Tuple[str, float], np.ndarray] = {}
    if collect_rasters:
        rasters[("truth", 0.0)] = classify_raster(field, levels, raster, raster)

    for density, n in densities:
        r = radio_range_for_density(density)
        iso_net = harbor_network(n, "random", seed=seed, field=field, radio_range=r)
        iso = run_isomap(iso_net)
        iso_acc = mapping_accuracy(field, iso.contour_map, levels, raster, raster)
        result.add_row(
            density=density,
            n_nodes=n,
            protocol="iso-map",
            reports_at_sink=len(iso.delivered_reports),
            accuracy=iso_acc,
        )
        if collect_rasters:
            rasters[("iso-map", density)] = iso.contour_map.classify_raster(
                raster, raster
            )

        tdb_net = harbor_network(n, "grid", seed=seed, field=field, radio_range=r)
        tdb = TinyDBProtocol(levels).run(tdb_net)
        tdb_acc = mapping_accuracy(field, tdb.band_map, levels, raster, raster)
        result.add_row(
            density=density,
            n_nodes=n,
            protocol="tinydb",
            reports_at_sink=tdb.reports_delivered,
            accuracy=tdb_acc,
        )
        if collect_rasters:
            rasters[("tinydb", density)] = tdb.band_map.classify_raster(
                raster, raster
            )
    if collect_rasters:
        result.rasters = rasters  # type: ignore[attr-defined]
    return result
