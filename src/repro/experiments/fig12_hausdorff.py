"""Fig. 12: Hausdorff distance of estimated isolines vs density / failures.

Paper claims: irregularity grows as density decreases and as failures
increase; Iso-Map benefits from a grid deployment (more regular output
than random); TinyDB's irregularity is proportional to the grid size and
thus grows like 1/sqrt(density); TinyDB is more vulnerable to failures.
Distances are normalised by the 50 x 50 field (we divide by the field
diagonal).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines import TinyDBProtocol
from repro.experiments.common import (
    ExperimentResult,
    default_levels,
    harbor_network,
    radio_range_for_density,
    run_isomap,
)
from repro.field import make_harbor_field
from repro.metrics.hausdorff import mean_isoline_hausdorff

DEFAULT_DENSITIES: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0)
DEFAULT_FAILURES: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4)


def _mean_or_none(values: List[Optional[float]]) -> Optional[float]:
    usable = [v for v in values if v is not None]
    if not usable:
        return None
    return sum(usable) / len(usable)


def run_fig12a(
    densities: Sequence[float] = DEFAULT_DENSITIES,
    seeds: Sequence[int] = (1, 2),
    grid: int = 120,
) -> ExperimentResult:
    """Normalised Hausdorff distance vs node density."""
    field = make_harbor_field()
    levels = default_levels()
    diag = field.bounds.diagonal
    result = ExperimentResult(
        experiment_id="fig12a",
        title="isoline Hausdorff distance vs node density (normalised)",
        columns=["density", "n_nodes", "isomap_random", "isomap_grid", "tinydb"],
        notes="distance / field diagonal; mean over levels and seeds",
    )
    for density in densities:
        n = max(9, round(density * 2500))
        r = radio_range_for_density(density)
        series = {"isomap_random": [], "isomap_grid": [], "tinydb": []}
        for seed in seeds:
            for deploy, key in (("random", "isomap_random"), ("grid", "isomap_grid")):
                net = harbor_network(n, deploy, seed=seed, field=field, radio_range=r)
                iso = run_isomap(net)
                series[key].append(
                    mean_isoline_hausdorff(field, iso.contour_map, levels, grid=grid)
                )
            tdb_net = harbor_network(n, "grid", seed=seed, field=field, radio_range=r)
            tdb = TinyDBProtocol(levels).run(tdb_net)
            series["tinydb"].append(
                mean_isoline_hausdorff(field, tdb.band_map, levels, grid=grid)
            )
        row = {"density": density, "n_nodes": n}
        for key, vals in series.items():
            mean = _mean_or_none(vals)
            row[key] = float("nan") if mean is None else mean / diag
        result.add_row(**row)
    return result


def run_fig12b(
    failures: Sequence[float] = DEFAULT_FAILURES,
    n: int = 2500,
    seeds: Sequence[int] = (1, 2),
    grid: int = 120,
    failure_mode: str = "sensing",
) -> ExperimentResult:
    """Normalised Hausdorff distance vs node-failure ratio at density 1."""
    field = make_harbor_field()
    levels = default_levels()
    diag = field.bounds.diagonal
    result = ExperimentResult(
        experiment_id="fig12b",
        title="isoline Hausdorff distance vs node failures (normalised)",
        columns=["failure_ratio", "isomap_random", "isomap_grid", "tinydb"],
        notes=f"n={n}, failure mode={failure_mode!r}",
    )
    for ratio in failures:
        series = {"isomap_random": [], "isomap_grid": [], "tinydb": []}
        for seed in seeds:
            for deploy, key in (("random", "isomap_random"), ("grid", "isomap_grid")):
                net = harbor_network(n, deploy, seed=seed, field=field)
                net.fail_random(ratio, mode=failure_mode)
                iso = run_isomap(net)
                series[key].append(
                    mean_isoline_hausdorff(field, iso.contour_map, levels, grid=grid)
                )
            tdb_net = harbor_network(n, "grid", seed=seed, field=field)
            tdb_net.fail_random(ratio, mode=failure_mode)
            tdb = TinyDBProtocol(levels).run(tdb_net)
            series["tinydb"].append(
                mean_isoline_hausdorff(field, tdb.band_map, levels, grid=grid)
            )
        row = {"failure_ratio": ratio}
        for key, vals in series.items():
            mean = _mean_or_none(vals)
            row[key] = float("nan") if mean is None else mean / diag
        result.add_row(**row)
    return result
