"""Fig. 12: Hausdorff distance of estimated isolines vs density / failures.

Paper claims: irregularity grows as density decreases and as failures
increase; Iso-Map benefits from a grid deployment (more regular output
than random); TinyDB's irregularity is proportional to the grid size and
thus grows like 1/sqrt(density); TinyDB is more vulnerable to failures.
Distances are normalised by the 50 x 50 field (we divide by the field
diagonal).

Sweeps run through :mod:`repro.experiments.runner` (``jobs`` workers,
optional result cache); tables are byte-identical at any job count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines import TinyDBProtocol
from repro.experiments.common import (
    ExperimentResult,
    default_levels,
    harbor_network,
    radio_range_for_density,
    run_isomap,
)
from repro.experiments.runner import grid_points, group_by_config, run_sweep
from repro.field import make_harbor_field
from repro.metrics.hausdorff import mean_isoline_hausdorff

DEFAULT_DENSITIES: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0)
DEFAULT_FAILURES: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4)


def _mean_or_none(values: List[Optional[float]]) -> Optional[float]:
    usable = [v for v in values if v is not None]
    if not usable:
        return None
    return sum(usable) / len(usable)


def fig12a_point(density: float, grid: int, seed: int) -> Dict[str, Optional[float]]:
    """Hausdorff distances of the three series at one (density, seed)."""
    field = make_harbor_field()
    levels = default_levels()
    n = max(9, round(density * 2500))
    r = radio_range_for_density(density)
    out: Dict[str, Optional[float]] = {}
    for deploy, key in (("random", "isomap_random"), ("grid", "isomap_grid")):
        net = harbor_network(n, deploy, seed=seed, field=field, radio_range=r)
        iso = run_isomap(net)
        out[key] = mean_isoline_hausdorff(field, iso.contour_map, levels, grid=grid)
    tdb_net = harbor_network(n, "grid", seed=seed, field=field, radio_range=r)
    tdb = TinyDBProtocol(levels).run(tdb_net)
    out["tinydb"] = mean_isoline_hausdorff(field, tdb.band_map, levels, grid=grid)
    return out


def fig12b_point(
    ratio: float, n: int, grid: int, failure_mode: str, seed: int
) -> Dict[str, Optional[float]]:
    """Hausdorff distances under one (failure ratio, seed) injection."""
    field = make_harbor_field()
    levels = default_levels()
    out: Dict[str, Optional[float]] = {}
    for deploy, key in (("random", "isomap_random"), ("grid", "isomap_grid")):
        net = harbor_network(n, deploy, seed=seed, field=field)
        net.fail_random(ratio, mode=failure_mode)
        iso = run_isomap(net)
        out[key] = mean_isoline_hausdorff(field, iso.contour_map, levels, grid=grid)
    tdb_net = harbor_network(n, "grid", seed=seed, field=field)
    tdb_net.fail_random(ratio, mode=failure_mode)
    tdb = TinyDBProtocol(levels).run(tdb_net)
    out["tinydb"] = mean_isoline_hausdorff(field, tdb.band_map, levels, grid=grid)
    return out


def _normalised_row(group: List[Dict[str, Optional[float]]], diag: float) -> Dict[str, float]:
    row: Dict[str, float] = {}
    for key in ("isomap_random", "isomap_grid", "tinydb"):
        mean = _mean_or_none([g[key] for g in group])
        row[key] = float("nan") if mean is None else mean / diag
    return row


def run_fig12a(
    densities: Sequence[float] = DEFAULT_DENSITIES,
    seeds: Sequence[int] = (1, 2),
    grid: int = 120,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Normalised Hausdorff distance vs node density."""
    diag = make_harbor_field().bounds.diagonal
    result = ExperimentResult(
        experiment_id="fig12a",
        title="isoline Hausdorff distance vs node density (normalised)",
        columns=["density", "n_nodes", "isomap_random", "isomap_grid", "tinydb"],
        notes="distance / field diagonal; mean over levels and seeds",
    )
    points = grid_points(
        fig12a_point, [{"density": d, "grid": grid} for d in densities], seeds
    )
    groups = group_by_config(run_sweep(points, jobs, cache_dir), len(seeds))
    for density, group in zip(densities, groups):
        result.add_row(
            density=density,
            n_nodes=max(9, round(density * 2500)),
            **_normalised_row(group, diag),
        )
    return result


def run_fig12b(
    failures: Sequence[float] = DEFAULT_FAILURES,
    n: int = 2500,
    seeds: Sequence[int] = (1, 2),
    grid: int = 120,
    failure_mode: str = "sensing",
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Normalised Hausdorff distance vs node-failure ratio at density 1."""
    diag = make_harbor_field().bounds.diagonal
    result = ExperimentResult(
        experiment_id="fig12b",
        title="isoline Hausdorff distance vs node failures (normalised)",
        columns=["failure_ratio", "isomap_random", "isomap_grid", "tinydb"],
        notes=f"n={n}, failure mode={failure_mode!r}",
    )
    points = grid_points(
        fig12b_point,
        [
            {"ratio": r, "n": n, "grid": grid, "failure_mode": failure_mode}
            for r in failures
        ],
        seeds,
    )
    groups = group_by_config(run_sweep(points, jobs, cache_dir), len(seeds))
    for ratio, group in zip(failures, groups):
        result.add_row(failure_ratio=ratio, **_normalised_row(group, diag))
    return result
