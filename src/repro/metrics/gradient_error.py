"""Gradient-direction error against the true isoline normal (Fig. 7).

The paper validates the regression estimator by comparing each isoline
node's calculated gradient direction with the normal direction of the
true isoline passing its position; the error drops below ~5 degrees once
the average node degree reaches the connectivity regime (>= 7).

The true isoline normal at a point is the direction of the true field
gradient there, so the error is simply the angle between the estimated
descent direction and the analytic ``-grad f``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.reports import IsolineReport
from repro.field.base import ScalarField
from repro.geometry import angle_between


@dataclass(frozen=True)
class GradientErrorStats:
    """Summary of per-report angular errors (degrees).

    Attributes:
        mean_deg: mean absolute angular error.
        p95_deg: 95th percentile error.
        max_deg: worst error.
        count: number of reports evaluated.
    """

    mean_deg: float
    p95_deg: float
    max_deg: float
    count: int


def gradient_errors(
    field: ScalarField, reports: Sequence[IsolineReport]
) -> List[float]:
    """Angular error (degrees) of each report's direction vs ground truth.

    Reports at points where the true gradient vanishes (flat spots) are
    skipped -- there is no true direction to compare against.
    """
    errors: List[float] = []
    for r in reports:
        true_d = field.descent_direction(r.position[0], r.position[1])
        if math.hypot(true_d[0], true_d[1]) < 1e-9:
            continue
        errors.append(math.degrees(angle_between(r.direction, true_d)))
    return errors


def summarize_errors(errors: Sequence[float]) -> GradientErrorStats:
    """Aggregate a list of angular errors.

    Raises:
        ValueError: on an empty list.
    """
    if not errors:
        raise ValueError("no errors to summarise")
    ordered = sorted(errors)
    n = len(ordered)
    p95 = ordered[min(n - 1, int(math.ceil(0.95 * n)) - 1)]
    return GradientErrorStats(
        mean_deg=sum(ordered) / n,
        p95_deg=p95,
        max_deg=ordered[-1],
        count=n,
    )
