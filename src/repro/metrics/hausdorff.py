"""Hausdorff distance between true and estimated isolines (Fig. 12).

"Hausdorff Distance measures the maximum departure between two curves,
thus providing an accuracy metric on the irregularity of the estimated
isolines to the real ones."  Curves are resampled to dense point sets and
the symmetric Hausdorff distance is computed on those.

The point-set kernels are vectorized with blocked NumPy broadcasting and
are bit-compatible with the retained scalar references (min/max/square
are exact regardless of evaluation order); the differential tests in
``tests/metrics`` pin the equality.  Empty-input policy: the point-set
functions raise ``ValueError`` (an undefined supremum is a programming
error at that layer), and :func:`isoline_hausdorff` is the *single* place
where empty curve families are absorbed into ``None``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import profiling
from repro.field.base import ScalarField
from repro.field.contours import extract_isolines
from repro.geometry import Vec, resample_polyline
from repro.geometry.polyline import resample_polyline_fast

#: Below this many pairwise distances the scalar loop beats NumPy setup.
_VEC_MIN_PAIRS = 2048

#: Scratch budget for one distance block (~16 MB of float64).
_BLOCK_FLOATS = 1 << 21


def directed_hausdorff_reference(a: Sequence[Vec], b: Sequence[Vec]) -> float:
    """Scalar reference for :func:`directed_hausdorff` (retained for the
    differential tests and benchmarks).

    Raises:
        ValueError: when either set is empty (the supremum/infimum would
            be undefined).
    """
    if not len(a) or not len(b):
        raise ValueError("directed Hausdorff distance needs non-empty sets")
    worst = 0.0
    for p in a:
        best = min(
            (p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2 for q in b
        )
        if best > worst:
            worst = best
    return math.sqrt(worst)


def directed_hausdorff(a: Sequence[Vec], b: Sequence[Vec]) -> float:
    """``sup_{p in a} inf_{q in b} |p - q|`` for finite point sets.

    Dispatches to a blocked-broadcast NumPy kernel when the pair count is
    large enough to amortise array setup; both paths return bit-identical
    results.

    Raises:
        ValueError: when either set is empty (the supremum/infimum would
            be undefined).
    """
    na, nb = len(a), len(b)
    if not na or not nb:
        raise ValueError("directed Hausdorff distance needs non-empty sets")
    if na * nb < _VEC_MIN_PAIRS:
        return directed_hausdorff_reference(a, b)
    pa = np.asarray(a, dtype=float)
    pb = np.asarray(b, dtype=float)
    return math.sqrt(_directed_sq(pa, pb))


def hausdorff_distance(a: Sequence[Vec], b: Sequence[Vec]) -> float:
    """Symmetric Hausdorff distance between two finite point sets.

    The vectorized path computes both directed distances from the same
    blocked distance matrix (row minima for ``a -> b``, running column
    minima for ``b -> a``), so the pairwise distances are evaluated once.
    """
    na, nb = len(a), len(b)
    if not na or not nb:
        raise ValueError("directed Hausdorff distance needs non-empty sets")
    if na * nb < _VEC_MIN_PAIRS:
        return max(directed_hausdorff_reference(a, b), directed_hausdorff_reference(b, a))
    pa = np.asarray(a, dtype=float)
    pb = np.asarray(b, dtype=float)
    d_ab, d_ba = _directed_sq_both(pa, pb)
    # sqrt is monotone and correctly rounded, so sqrt(max) == max(sqrt).
    return math.sqrt(max(d_ab, d_ba))


def isoline_hausdorff(
    field: ScalarField,
    level: float,
    estimated_polylines: Sequence[Sequence[Vec]],
    spacing: float = 0.5,
    grid: int = 150,
    normalize: bool = False,
) -> Optional[float]:
    """Hausdorff distance between true and estimated isolines of one level.

    Both curve families are resampled at ``spacing``; the true isolines
    come from marching squares at ``grid x grid`` resolution.

    This is the single empty-handling point of the Hausdorff pipeline:
    it returns ``None`` when either family is empty (no isoline exists at
    that level, or the protocol produced none), so no caller ever sees
    the ``ValueError`` the point-set kernels raise on empty sets --
    callers aggregate over the levels that are comparable.  With
    ``normalize`` the distance is divided by the field diagonal (the
    paper normalises against the 50 x 50 unit field).
    """
    with profiling.stage("hausdorff.truth_isolines"):
        true_lines = extract_isolines(field, level, nx=grid, ny=grid)
    with profiling.stage("hausdorff.resample"):
        true_pts = _sample_all(true_lines, spacing)
        est_pts = _sample_all(estimated_polylines, spacing)
    if not true_pts or not est_pts:
        return None
    with profiling.stage("hausdorff.distance"):
        d = hausdorff_distance(true_pts, est_pts)
    if normalize:
        d /= field.bounds.diagonal
    return d


def mean_isoline_hausdorff(
    field: ScalarField,
    band_map,
    levels: Sequence[float],
    spacing: float = 0.5,
    grid: int = 150,
) -> Optional[float]:
    """Average Hausdorff distance over all comparable levels.

    ``band_map`` must expose ``isolines(level) -> polylines`` (a
    :class:`repro.core.ContourMap` or a baseline map).  Levels where
    either side has no isoline are skipped; returns ``None`` when no level
    is comparable.
    """
    values: List[float] = []
    for v in levels:
        d = isoline_hausdorff(field, v, band_map.isolines(v), spacing, grid)
        if d is not None:
            values.append(d)
    if not values:
        return None
    return sum(values) / len(values)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _directed_sq(pa: np.ndarray, pb: np.ndarray) -> float:
    """Max over ``pa`` of the min squared distance to ``pb``, blocked."""
    bx = pb[:, 0]
    by = pb[:, 1]
    block = max(1, _BLOCK_FLOATS // max(1, len(pb)))
    worst = 0.0
    for lo in range(0, len(pa), block):
        chunk = pa[lo : lo + block]
        d2 = (chunk[:, 0:1] - bx[None, :]) ** 2
        d2 += (chunk[:, 1:2] - by[None, :]) ** 2
        worst = max(worst, float(d2.min(axis=1).max()))
    return worst


def _directed_sq_both(pa: np.ndarray, pb: np.ndarray) -> Tuple[float, float]:
    """(directed a->b, directed b->a) squared, sharing one blocked pass."""
    bx = pb[:, 0]
    by = pb[:, 1]
    block = max(1, _BLOCK_FLOATS // max(1, len(pb)))
    worst_ab = 0.0
    col_min = np.full(len(pb), np.inf)
    for lo in range(0, len(pa), block):
        chunk = pa[lo : lo + block]
        d2 = (chunk[:, 0:1] - bx[None, :]) ** 2
        d2 += (chunk[:, 1:2] - by[None, :]) ** 2
        worst_ab = max(worst_ab, float(d2.min(axis=1).max()))
        np.minimum(col_min, d2.min(axis=0), out=col_min)
    return worst_ab, float(col_min.max())


def _sample_all(polylines: Sequence[Sequence[Vec]], spacing: float) -> List[Vec]:
    pts: List[Vec] = []
    for line in polylines:
        if len(line) >= 2:
            pts.extend(resample_polyline_fast(list(line), spacing))
        elif len(line):
            pts.append(line[0])
    return pts


def _sample_all_reference(
    polylines: Sequence[Sequence[Vec]], spacing: float
) -> List[Vec]:
    """Scalar-resample variant of :func:`_sample_all` (bench reference)."""
    pts: List[Vec] = []
    for line in polylines:
        if len(line) >= 2:
            pts.extend(resample_polyline(list(line), spacing))
        elif len(line):
            pts.append(line[0])
    return pts
