"""Hausdorff distance between true and estimated isolines (Fig. 12).

"Hausdorff Distance measures the maximum departure between two curves,
thus providing an accuracy metric on the irregularity of the estimated
isolines to the real ones."  Curves are resampled to dense point sets and
the symmetric Hausdorff distance is computed on those.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.field.base import ScalarField
from repro.field.contours import extract_isolines
from repro.geometry import Vec, resample_polyline


def directed_hausdorff(a: Sequence[Vec], b: Sequence[Vec]) -> float:
    """``sup_{p in a} inf_{q in b} |p - q|`` for finite point sets.

    Raises:
        ValueError: when either set is empty (the supremum/infimum would
            be undefined).
    """
    if not a or not b:
        raise ValueError("directed Hausdorff distance needs non-empty sets")
    worst = 0.0
    for p in a:
        best = min(
            (p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2 for q in b
        )
        if best > worst:
            worst = best
    return math.sqrt(worst)


def hausdorff_distance(a: Sequence[Vec], b: Sequence[Vec]) -> float:
    """Symmetric Hausdorff distance between two finite point sets."""
    return max(directed_hausdorff(a, b), directed_hausdorff(b, a))


def isoline_hausdorff(
    field: ScalarField,
    level: float,
    estimated_polylines: Sequence[Sequence[Vec]],
    spacing: float = 0.5,
    grid: int = 150,
    normalize: bool = False,
) -> Optional[float]:
    """Hausdorff distance between true and estimated isolines of one level.

    Both curve families are resampled at ``spacing``; the true isolines
    come from marching squares at ``grid x grid`` resolution.

    Returns ``None`` when either family is empty (no isoline exists at
    that level, or the protocol produced none) -- callers aggregate over
    the levels that are comparable.  With ``normalize`` the distance is
    divided by the field diagonal (the paper normalises against the
    50 x 50 unit field).
    """
    true_lines = extract_isolines(field, level, nx=grid, ny=grid)
    true_pts = _sample_all(true_lines, spacing)
    est_pts = _sample_all(estimated_polylines, spacing)
    if not true_pts or not est_pts:
        return None
    d = hausdorff_distance(true_pts, est_pts)
    if normalize:
        d /= field.bounds.diagonal
    return d


def mean_isoline_hausdorff(
    field: ScalarField,
    band_map,
    levels: Sequence[float],
    spacing: float = 0.5,
    grid: int = 150,
) -> Optional[float]:
    """Average Hausdorff distance over all comparable levels.

    ``band_map`` must expose ``isolines(level) -> polylines`` (a
    :class:`repro.core.ContourMap` or a baseline map).  Levels where
    either side has no isoline are skipped; returns ``None`` when no level
    is comparable.
    """
    values: List[float] = []
    for v in levels:
        d = isoline_hausdorff(field, v, band_map.isolines(v), spacing, grid)
        if d is not None:
            values.append(d)
    if not values:
        return None
    return sum(values) / len(values)


def _sample_all(polylines: Sequence[Sequence[Vec]], spacing: float) -> List[Vec]:
    pts: List[Vec] = []
    for line in polylines:
        if len(line) >= 2:
            pts.extend(resample_polyline(list(line), spacing))
        elif line:
            pts.append(line[0])
    return pts
