"""Evaluation metrics (Section 5).

- :mod:`repro.metrics.accuracy` -- mapping accuracy: the ratio of
  accurately mapped area (Fig. 11).
- :mod:`repro.metrics.hausdorff` -- Hausdorff distance between true and
  estimated isolines (Fig. 12).
- :mod:`repro.metrics.gradient_error` -- angle between estimated gradient
  directions and the true isoline normals (Fig. 7).
"""

from repro.metrics.accuracy import mapping_accuracy, raster_accuracy
from repro.metrics.hausdorff import (
    directed_hausdorff,
    hausdorff_distance,
    isoline_hausdorff,
)
from repro.metrics.gradient_error import GradientErrorStats, gradient_errors

__all__ = [
    "mapping_accuracy",
    "raster_accuracy",
    "directed_hausdorff",
    "hausdorff_distance",
    "isoline_hausdorff",
    "GradientErrorStats",
    "gradient_errors",
]
