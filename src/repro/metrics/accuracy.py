"""Mapping accuracy: the ratio of accurately mapped area (Fig. 11).

The paper measures "the ratio of the accurately mapped area in the
resulting contour map to the whole area".  We rasterise both the ground
truth (field values classified into bands) and the protocol's map at the
same resolution and count agreeing cells.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.field.base import ScalarField
from repro.field.contours import classify_raster


def raster_accuracy(truth: np.ndarray, estimate: np.ndarray) -> float:
    """Fraction of raster cells whose band matches.

    Raises:
        ValueError: on shape mismatch.
    """
    truth = np.asarray(truth)
    estimate = np.asarray(estimate)
    if truth.shape != estimate.shape:
        raise ValueError(
            f"raster shapes differ: {truth.shape} vs {estimate.shape}"
        )
    if truth.size == 0:
        raise ValueError("empty rasters")
    return float((truth == estimate).mean())


def mapping_accuracy(
    field: ScalarField,
    band_map,
    levels: Sequence[float],
    nx: int = 100,
    ny: int = 100,
) -> float:
    """Accuracy of ``band_map`` against the true contour map of ``field``.

    Args:
        field: the ground-truth phenomenon.
        band_map: any object with ``classify_raster(nx, ny) -> (ny, nx)``
            band indices (a :class:`repro.core.ContourMap` or a baseline's
            map).
        levels: the isolevels defining the bands.
        nx, ny: evaluation raster resolution.
    """
    truth = classify_raster(field, levels, nx, ny)
    estimate = band_map.classify_raster(nx, ny)
    return raster_accuracy(truth, estimate)
