"""The :class:`SensorNetwork` facade.

Bundles a deployment over a scalar field, the disk-radio adjacency, the
routing tree and failure injection into the single object that every
protocol (Iso-Map and the baselines) runs against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

import numpy as np

from repro import profiling
from repro.field.base import ScalarField
from repro.geometry import BoundingBox, Vec, dist
from repro.network.deployment import grid_deployment, uniform_random_deployment
from repro.network.node import SensorNode
from repro.network.routing_tree import RoutingTree, build_routing_tree
from repro.network.topology import (
    CsrAdjacency,
    average_degree,
    build_csr_adjacency,
    is_connected,
)

#: The paper's radio range in normalised units: "to keep a connected
#: communication graph, the radio range should be no less than 1.5, which
#: results in an average node degree of 7" (Section 5).
DEFAULT_RADIO_RANGE = 1.5


@dataclass
class TopologySkeleton:
    """The deployment-determined, field-independent part of a network.

    Positions, CSR adjacency, neighbour lists, sink choice and the
    healthy routing tree depend only on ``(positions, radio_range)`` --
    not on the sensed field, the noise draw, or any failure state -- so
    repeated runs over the same deployment (sweep repetitions, epoch
    sequences, protocol comparisons) can share one skeleton instead of
    re-hashing the disk graph and re-running BFS every time.  Capture
    with :meth:`SensorNetwork.skeleton` and pass back via ``prebuilt``.

    Everything here is treated as immutable by :class:`SensorNetwork`
    (rebuilds after crash-mode failures replace ``tree`` on the network,
    never mutate the skeleton's).
    """

    positions_array: np.ndarray
    csr: "CsrAdjacency"
    neighbor_lists: List[List[int]]
    sink_index: int
    tree: "RoutingTree"


class SensorNetwork:
    """A deployed, connected, routed sensor network over a scalar field.

    Args:
        field: the sensed phenomenon.
        positions: node deployment positions inside ``field.bounds``.
        radio_range: unit-disk communication radius.
        sink_index: index of the sink node; by default the node closest to
            the field centre.  (A corner sink has half its radio disk
            outside the field, which makes the root fragile under failure
            injection; the paper's tree-based routing assumes a robustly
            connected root.)
        sensing_noise: standard deviation of zero-mean Gaussian noise added
            to each node's sensed value (0 disables).
        rng: randomness source for sensing noise and failure injection.
        prebuilt: a :class:`TopologySkeleton` captured from an earlier
            network with the identical ``(positions, radio_range)``:
            adjacency, sink choice and routing tree are adopted instead
            of recomputed.  Sensing (field sampling + noise draws) still
            runs normally, so results are byte-identical to a cold build.
    """

    def __init__(
        self,
        field: ScalarField,
        positions: Sequence[Vec],
        radio_range: float = DEFAULT_RADIO_RANGE,
        sink_index: Optional[int] = None,
        sensing_noise: float = 0.0,
        rng: Optional[random.Random] = None,
        prebuilt: Optional[TopologySkeleton] = None,
    ):
        if not positions:
            raise ValueError("a network needs at least one node")
        self.field = field
        self.radio_range = radio_range
        self._rng = rng if rng is not None else random.Random(0)
        self.nodes: List[SensorNode] = []
        for i, p in enumerate(positions):
            if not field.bounds.contains(p, tol=1e-9):
                raise ValueError(f"node {i} deployed outside the field at {p}")
            v = field.value(p[0], p[1])
            if sensing_noise > 0:
                v += self._rng.gauss(0.0, sensing_noise)
            self.nodes.append(SensorNode(node_id=i, position=p, value=v))
        self._adjacency_sets: Optional[List[Set[int]]] = None
        self._tree_version = 0
        if prebuilt is not None:
            if len(prebuilt.positions_array) != len(positions):
                raise ValueError("prebuilt skeleton is for a different size")
            self.positions_array = prebuilt.positions_array
            self.csr = prebuilt.csr
            self.neighbor_lists = prebuilt.neighbor_lists
            self.sink_index = (
                sink_index if sink_index is not None else prebuilt.sink_index
            )
            self.tree = prebuilt.tree
            self._adopt_tree(prebuilt.tree)
            return
        # CSR is the primary adjacency: the edge set never changes
        # (failures only flip per-node flags), so it is built once with the
        # batched kernel; per-node neighbour lists serve the traversal
        # loops, and legacy set views are materialised lazily on demand.
        self.positions_array: np.ndarray = np.asarray(positions, dtype=float)
        with profiling.stage("topology.build"):
            self.csr: CsrAdjacency = build_csr_adjacency(
                self.positions_array, radio_range
            )
        self.neighbor_lists: List[List[int]] = self.csr.to_lists()
        if sink_index is None:
            centre = field.bounds.center
            sink_index = min(
                range(len(positions)), key=lambda i: dist(positions[i], centre)
            )
        self.sink_index = sink_index
        self.tree: RoutingTree = self._build_tree()

    def skeleton(self) -> TopologySkeleton:
        """Capture the reusable topology (see :class:`TopologySkeleton`).

        Only valid on a fully-alive network (the skeleton's tree is the
        healthy one); callers cache it right after construction.
        """
        return TopologySkeleton(
            positions_array=self.positions_array,
            csr=self.csr,
            neighbor_lists=self.neighbor_lists,
            sink_index=self.sink_index,
            tree=self.tree,
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def random_deploy(
        cls,
        field: ScalarField,
        n: int,
        radio_range: float = DEFAULT_RADIO_RANGE,
        seed: int = 0,
        sensing_noise: float = 0.0,
        prebuilt: Optional[TopologySkeleton] = None,
    ) -> "SensorNetwork":
        """Uniform-random deployment of ``n`` nodes (Iso-Map's default).

        ``prebuilt`` skips the adjacency/tree build; positions are still
        drawn (the shared ``rng`` sequence feeds the noise draws next, so
        skipping them would desynchronise sensing).
        """
        rng = random.Random(seed)
        positions = uniform_random_deployment(n, field.bounds, rng)
        return cls(
            field,
            positions,
            radio_range,
            sensing_noise=sensing_noise,
            rng=rng,
            prebuilt=prebuilt,
        )

    @classmethod
    def grid_deploy(
        cls,
        field: ScalarField,
        n: int,
        radio_range: float = DEFAULT_RADIO_RANGE,
        seed: int = 0,
        sensing_noise: float = 0.0,
        prebuilt: Optional[TopologySkeleton] = None,
    ) -> "SensorNetwork":
        """Regular-grid deployment (required by TinyDB-style baselines)."""
        positions = grid_deployment(n, field.bounds)
        return cls(
            field,
            positions,
            radio_range,
            sensing_noise=sensing_noise,
            rng=random.Random(seed),
            prebuilt=prebuilt,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def bounds(self) -> BoundingBox:
        return self.field.bounds

    @property
    def density(self) -> float:
        """Nodes per unit area (the paper's "normalized node density")."""
        return self.n_nodes / self.bounds.area

    @property
    def diameter_hops(self) -> int:
        """Routing-tree depth: the paper's "network diameter" in hops."""
        return self.tree.depth

    def alive_mask(self) -> List[bool]:
        return [node.alive for node in self.nodes]

    def alive_count(self) -> int:
        return sum(1 for node in self.nodes if node.alive)

    @property
    def adjacency(self) -> List[Set[int]]:
        """Per-node neighbour sets (legacy view, materialised on demand)."""
        if self._adjacency_sets is None:
            self._adjacency_sets = self.csr.to_sets()
        return self._adjacency_sets

    def alive_neighbors(self, i: int) -> List[int]:
        """Alive disk-radio neighbours of node ``i``."""
        return [j for j in self.neighbor_lists[i] if self.nodes[j].alive]

    def sensing_neighbors(self, i: int) -> List[int]:
        """Neighbours of ``i`` that can answer value queries."""
        return [j for j in self.neighbor_lists[i] if self.nodes[j].can_sense]

    def k_hop_alive_neighbors(self, i: int, k: int) -> List[int]:
        """Alive nodes within k hops of node ``i`` (excluding ``i``)."""
        return self.csr.k_hop_neighbors(i, k, alive=self.alive_mask()).tolist()

    def k_hop_sensing_neighbors(self, i: int, k: int) -> List[int]:
        """Sensing-capable nodes within k (alive-routed) hops of node ``i``.

        The multi-hop paths go through alive nodes (forwarding works even
        past sensing-failed ones); the returned set keeps only nodes that
        can actually answer a value query.
        """
        reachable = self.csr.k_hop_neighbors(i, k, alive=self.alive_mask())
        return [j for j in reachable.tolist() if self.nodes[j].can_sense]

    def average_degree(self) -> float:
        """Mean alive-neighbour count over alive nodes."""
        return average_degree(self.csr, self.alive_mask())

    def is_connected(self) -> bool:
        return is_connected(self.csr, self.alive_mask())

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _build_tree(self) -> RoutingTree:
        positions = [node.position for node in self.nodes]
        with profiling.stage("topology.tree"):
            tree = build_routing_tree(
                positions, self.csr, self.sink_index, self.alive_mask()
            )
        self._adopt_tree(tree)
        return tree

    def _adopt_tree(self, tree: RoutingTree) -> None:
        """Copy a tree's routing state onto the nodes."""
        self._tree_version += 1
        for node in self.nodes:
            node.reset_routing()
        for i, node in enumerate(self.nodes):
            node.level = tree.level[i]
            node.parent = tree.parent[i]
            node.children = list(tree.children[i])

    def rebuild_tree(self) -> None:
        """Recompute routing after topology changes (e.g. failures)."""
        self.tree = self._build_tree()

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def fail_random(
        self,
        ratio: float,
        rng: Optional[random.Random] = None,
        mode: str = "sensing",
    ) -> List[int]:
        """Fail a uniform random fraction of non-sink nodes.

        Two failure semantics (Figs. 11b / 12b sweep the ratio):

        - ``mode="sensing"`` (default): failed nodes produce no data and
          answer no neighbourhood value queries, but keep forwarding.  This
          matches the paper's observed behaviour -- TinyDB "recovers the map
          from lossy isobars" and Iso-Map "suffers from the loss of isoline
          node reports" -- i.e. the damage is missing *reports*, with the
          collection tree still functioning.
        - ``mode="crash"``: failed nodes are removed entirely and routing
          is rebuilt over the survivors.  At the paper's average degree of
          ~7 this fragments the graph near the percolation threshold, so
          accuracy additionally collapses through disconnection; the
          failure-injection tests cover this harsher model too.

        Edge semantics (pinned by ``tests/network/test_network.py``): the
        sink never fails, and ``ratio`` is taken over the *non-sink*
        candidate pool -- ``k = round_half_up(ratio * (n_nodes - 1))``
        nodes fail.  Rounding is explicit round-half-up (0.5 rounds
        towards more failures) rather than Python's banker's ``round``,
        so sweep points are bit-reproducible across Python versions.

        Returns the failed node ids.
        """
        if not 0 <= ratio <= 1:
            raise ValueError("failure ratio must be in [0, 1]")
        if mode not in ("sensing", "crash"):
            raise ValueError(f"unknown failure mode {mode!r}")
        r = rng if rng is not None else self._rng
        candidates = [i for i in range(self.n_nodes) if i != self.sink_index]
        k = min(int(ratio * len(candidates) + 0.5), len(candidates))
        failed = r.sample(candidates, k)
        for i in failed:
            if mode == "crash":
                self.nodes[i].alive = False
            self.nodes[i].sensing_ok = False
        if mode == "crash":
            self.rebuild_tree()
        return failed

    def resense(
        self,
        field: Optional[ScalarField] = None,
        sensing_noise: float = 0.0,
    ) -> None:
        """Take a fresh sensing epoch, optionally over a changed field.

        Contour mapping is continuous monitoring: the phenomenon evolves
        (e.g. a storm deposits silt) and the same deployment re-samples
        it.  Updates every node's ``value``; positions, topology, routing
        and failure state are untouched.
        """
        if field is not None:
            self.field = field
        for node in self.nodes:
            v = self.field.value(node.position[0], node.position[1])
            if sensing_noise > 0:
                v += self._rng.gauss(0.0, sensing_noise)
            node.value = v

    def revive_all(self) -> None:
        """Undo failure injection (used between experiment repetitions)."""
        for node in self.nodes:
            node.alive = True
            node.sensing_ok = True
        self.rebuild_tree()
