"""Fault-tolerant collection transport shared by Iso-Map and every baseline.

One :class:`EpochTransport` instance drives one collection epoch: it
walks the routing tree bottom-up (the TAG slot schedule), fires the
:class:`~repro.network.faults.FaultPlan`'s scheduled events at the level
boundaries, and carries each protocol's frames hop by hop with the
defenses a real deployment would run:

- **ARQ** with capped exponential backoff: a frame lost or CRC-rejected
  on air is retransmitted up to ``max_retries`` times; every attempt
  burns tx energy at the sender and listen energy at the receiver, and
  each backoff window is charged as ops at the sender.
- **CRC**: corrupted frames are detected at the receiver and treated as
  losses (retried under ARQ).  CRC-16/CCITT-FALSE detects every burst of
  up to 3 flipped bits (Hamming distance 4 for frames this short), which
  is exactly the damage :meth:`FaultEngine.corrupt_payload` injects, so
  detection is modelled as certain; ``tests/network/test_transport.py``
  ties the model to the real :func:`repro.core.wire.check_crc`.  With
  the CRC *off*, a damaged frame is accepted: protocols that own a codec
  decode a poisoned report (the silently-wrong-map failure mode), the
  rest discard an unparseable frame.
- **Sequence-number duplicate suppression**: a duplicated frame (the
  classic lost-ACK retransmission) is dropped by the receiver's seq
  filter; with dedup off the copy propagates, costing energy and
  polluting filters/aggregates downstream.
- **Local orphan re-parenting**: a node whose parent crashed probes its
  alive neighbours and re-attaches to one at level <= its own -- an
  O(degree) repair instead of the global ``rebuild_tree()``; probe,
  reply and join traffic is charged.

Framing note: the CRC trailer, sequence numbers and link-layer ACKs ride
inside the per-hop framing the paper's byte budget already implies (see
:mod:`repro.core.wire`), so a fault-free epoch through this transport
charges *exactly* the bytes the direct ``charge_hop`` path charged --
the golden snapshot is byte-identical under a zero-fault plan.  The
transport charges only work that would not happen on a perfect link:
retransmissions, duplicate frames, backoff windows and repair messages.

Accounting is per frame *instance*: ``generated`` report instances plus
``duplicates_created`` copies each end in exactly one terminal bucket
(``delivered``, ``dropped_by_filter``, ``lost``, ``corrupted_discarded``
or ``duplicate_discarded``), which is the conservation law
:meth:`DegradationReport.is_conserved` checks.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.geometry import dist
from repro.network.accounting import CostAccountant
from repro.network.faults import FaultEngine, FaultPlan
from repro.network.links import LossyLinkModel, charge_lossy_hop
from repro.network.network import SensorNetwork

#: Terminal buckets (DegradationReport counter names) an instance can hit.
_LOST = "lost"
_CORRUPTED = "corrupted_discarded"

#: Strand reasons reported by :meth:`EpochTransport.walk`.
STRAND_CRASHED = "crashed"
STRAND_ORPHANED = "orphaned"

#: A receiver-side payload mangler: called when a corrupted frame is
#: accepted (CRC off); returns the poisoned payload the receiver decodes,
#: or None when the damage makes the frame unparseable.
Mangler = Callable[[Any, FaultEngine], Optional[Any]]


@dataclass(frozen=True)
class TransportConfig:
    """Defense knobs of the fault-tolerant transport.

    Attributes:
        arq: retransmit frames lost or CRC-rejected on air.
        max_retries: retransmissions after the first attempt (so at most
            ``max_retries + 1`` attempts per frame), matching
            :class:`LossyLinkModel`'s budget shape.
        backoff_base / backoff_cap: retry ``k`` (k >= 1) charges
            ``min(backoff_base << (k - 1), backoff_cap)`` ops at the
            sender -- the capped exponential backoff listen window.
        crc: receivers CRC-check frames and reject damaged ones.
        dedup: receivers drop duplicate frames by sequence number.
        reparent: nodes whose parent crashed locally re-attach to an
            alive neighbour at level <= their own (repair traffic is
            charged) instead of stranding their buffered reports.
    """

    arq: bool = True
    max_retries: int = 3
    backoff_base: int = 1
    backoff_cap: int = 8
    crc: bool = True
    dedup: bool = True
    reparent: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative")

    @staticmethod
    def hardened() -> "TransportConfig":
        """Every defense on (the default)."""
        return TransportConfig()

    @staticmethod
    def vanilla() -> "TransportConfig":
        """The paper's implicit transport: no defenses at all."""
        return TransportConfig(
            arq=False, max_retries=0, crc=False, dedup=False, reparent=False
        )


@dataclass
class DegradationReport:
    """What one epoch's collection lost, repaired and discarded.

    Instance conservation: ``delivered + dropped_by_filter + lost +
    corrupted_discarded + duplicate_discarded == generated +
    duplicates_created`` (each generated report instance and each
    injected copy ends in exactly one bucket).

    Attributes:
        generated: report instances registered by the protocol.
        delivered: distinct reports that reached the sink.
        dropped_by_filter: instances rejected by in-network filtering.
        lost: instances lost on air (retries exhausted) or stranded in a
            crashed/orphaned node's buffer.
        corrupted_discarded: instances discarded because their frame
            arrived damaged beyond use (retries exhausted under CRC, or
            unparseable without one).
        duplicate_discarded: injected copies suppressed by seq-number
            dedup, plus extra sink arrivals of an already-delivered
            report.
        duplicates_created: copies injected by the fault plan.
        corrupted_detected: damaged frames caught by the CRC (each was
            retried or finally discarded).
        corrupted_accepted: damaged frames accepted without a CRC and
            decoded into poisoned reports that kept flowing.
        retransmissions: ARQ retry attempts that went on air.
        repaired_orphans: nodes locally re-attached after their parent
            crashed.
        stranded_crashed / stranded_orphaned: instances stranded in a
            crashed node's buffer / in an orphan that found no new parent
            (both also counted in ``lost``).
        crashed_nodes / recovered_nodes: mid-epoch node events fired.
        disconnected_regions: connected components of the end-of-epoch
            alive communication graph that cannot reach the sink.
        per_group: group key -> [generated, delivered]; Iso-Map groups by
            isolevel, giving the per-isolevel delivery rate.
    """

    generated: int = 0
    delivered: int = 0
    dropped_by_filter: int = 0
    lost: int = 0
    corrupted_discarded: int = 0
    duplicate_discarded: int = 0
    duplicates_created: int = 0
    corrupted_detected: int = 0
    corrupted_accepted: int = 0
    retransmissions: int = 0
    repaired_orphans: int = 0
    stranded_crashed: int = 0
    stranded_orphaned: int = 0
    crashed_nodes: int = 0
    recovered_nodes: int = 0
    disconnected_regions: int = 0
    per_group: Dict[Any, List[int]] = field(default_factory=dict)

    @property
    def is_conserved(self) -> bool:
        """Does every instance land in exactly one terminal bucket?"""
        return (
            self.delivered
            + self.dropped_by_filter
            + self.lost
            + self.corrupted_discarded
            + self.duplicate_discarded
            == self.generated + self.duplicates_created
        )

    def delivery_rate(self) -> float:
        """Fraction of generated reports that reached the sink."""
        return self.delivered / self.generated if self.generated else 1.0

    def group_delivery_rates(self) -> Dict[Any, float]:
        """Per-group (per-isolevel for Iso-Map) delivery rates."""
        return {
            g: (d / g_gen if g_gen else 1.0)
            for g, (g_gen, d) in self.per_group.items()
        }

    @property
    def is_degraded(self) -> bool:
        """Anything at all to worry about in this epoch's map?"""
        return (
            self.lost > 0
            or self.corrupted_discarded > 0
            or self.corrupted_accepted > 0
            or self.crashed_nodes > 0
            or self.disconnected_regions > 0
        )

    def summary(self) -> Dict[str, float]:
        """A flat dict convenient for experiment tables."""
        return {
            "generated": float(self.generated),
            "delivered": float(self.delivered),
            "delivery_rate": self.delivery_rate(),
            "dropped_by_filter": float(self.dropped_by_filter),
            "lost": float(self.lost),
            "corrupted_discarded": float(self.corrupted_discarded),
            "corrupted_accepted": float(self.corrupted_accepted),
            "duplicate_discarded": float(self.duplicate_discarded),
            "retransmissions": float(self.retransmissions),
            "repaired_orphans": float(self.repaired_orphans),
            "crashed_nodes": float(self.crashed_nodes),
            "disconnected_regions": float(self.disconnected_regions),
        }


@dataclass(frozen=True)
class Hop:
    """One transmission opportunity yielded by :meth:`EpochTransport.walk`.

    ``parent`` is None when the node cannot transmit this epoch; then
    ``reason`` says why (:data:`STRAND_CRASHED` or
    :data:`STRAND_ORPHANED`) and the caller must
    :meth:`~EpochTransport.strand` the node's buffered instances.
    """

    node: int
    parent: Optional[int]
    reason: Optional[str] = None


@dataclass
class SendOutcome:
    """Result of one :meth:`EpochTransport.send`.

    Attributes:
        delivered: did (at least one copy of) the frame reach the
            receiver?
        arrivals: ``(payload, is_duplicate)`` per frame instance the
            receiver accepted -- empty on failure, one entry normally,
            two when a duplicate slipped past dedup.  A duplicate's
            payload is the *same object*; callers that mutate payloads
            (region aggregation) must clone it.
    """

    delivered: bool
    arrivals: List[Tuple[Any, bool]]


class EpochTransport:
    """Carries one protocol's collection epoch over a faulty network.

    Args:
        network: the deployment (never mutated; crash state lives in the
            fault engine).
        costs: the run's accountant; all transport work is charged here.
        config: defense knobs; defaults to :meth:`TransportConfig.hardened`.
        plan: the fault plan; None or a null plan selects the exact
            fast path of the pre-transport code (byte-identical charges).
        link_model: the legacy Bernoulli+ARQ model of
            :mod:`repro.network.links`, honoured verbatim (same rng
            consumption order) for backward compatibility; mutually
            exclusive with a non-null ``plan``.
        link_seed: seed for the legacy link model's randomness.
        mangler: optional receiver-side decoder for corrupted frames
            accepted without a CRC (protocols with a real codec pass
            one; without it such frames are discarded as unparseable).
    """

    def __init__(
        self,
        network: SensorNetwork,
        costs: CostAccountant,
        config: Optional[TransportConfig] = None,
        plan: Optional[FaultPlan] = None,
        link_model: Optional[LossyLinkModel] = None,
        link_seed: int = 0,
        mangler: Optional[Mangler] = None,
    ):
        self.network = network
        self.costs = costs
        self.config = config if config is not None else TransportConfig.hardened()
        self.mangler = mangler
        self.link_model = link_model
        self._legacy_rng = random.Random(link_seed)
        if plan is not None and not plan.is_null:
            if link_model is not None:
                raise ValueError(
                    "pass the link loss inside the FaultPlan (e.g. "
                    "BernoulliLink), not as a separate legacy link_model"
                )
            self.engine: Optional[FaultEngine] = FaultEngine(plan, network)
        else:
            self.engine = None
        self._report = DegradationReport()
        self._open = 0  # instances registered/injected but not yet bucketed
        self._next_rid = 0
        self._group_of: Dict[int, Any] = {}
        self._delivered_rids: set = set()
        self._processed: set = set()  # nodes whose slot already passed

    # ------------------------------------------------------------------
    # Report registration and terminal buckets
    # ------------------------------------------------------------------

    def register(self, group: Any = None) -> int:
        """Register one generated report; returns its tracking id."""
        rid = self._next_rid
        self._next_rid += 1
        self._report.generated += 1
        self._open += 1
        if group is not None:
            self._group_of[rid] = group
            self._report.per_group.setdefault(group, [0, 0])[0] += 1
        return rid

    def mark_filtered(self, rid: int) -> None:
        """One instance of ``rid`` was rejected by in-network filtering."""
        self._report.dropped_by_filter += 1
        self._open -= 1

    def strand(self, rids: Sequence[int], reason: str) -> None:
        """Instances buffered in a node that cannot transmit are lost."""
        n = len(rids)
        self._report.lost += n
        self._open -= n
        if reason == STRAND_CRASHED:
            self._report.stranded_crashed += n
        else:
            self._report.stranded_orphaned += n

    def deliver_at_sink(self, rid: int) -> bool:
        """One instance of ``rid`` arrived at the sink.

        Returns True on the first arrival (count the report delivered);
        later arrivals are duplicate-discarded by the sink's seq filter.
        """
        self._open -= 1
        if rid in self._delivered_rids:
            self._report.duplicate_discarded += 1
            return False
        self._delivered_rids.add(rid)
        self._report.delivered += 1
        group = self._group_of.get(rid)
        if group is not None:
            self._report.per_group[group][1] += 1
        return True

    def _terminal(self, rids: Sequence[int], bucket: str) -> None:
        n = len(rids)
        if bucket == _LOST:
            self._report.lost += n
        else:
            self._report.corrupted_discarded += n
        self._open -= n

    # ------------------------------------------------------------------
    # The slotted bottom-up walk
    # ------------------------------------------------------------------

    def walk(self) -> Iterator[Hop]:
        """Yield one :class:`Hop` per routed non-sink node, children first.

        The fault-free path reproduces the classic
        ``subtree_order_bottom_up`` loop exactly.  Under a plan, node
        events fire at each level boundary, crashed holders yield a
        strand, and dead parents are locally repaired when the config
        allows.
        """
        tree = self.network.tree
        order = tree.subtree_order_bottom_up()
        if self.engine is None:
            for u in order:
                if u == tree.sink:
                    continue
                parent = tree.parent[u]
                if parent is None:
                    continue
                yield Hop(u, parent)
            return

        current_level: Optional[int] = None
        for u in order:
            level = tree.level[u] or 0
            if current_level is None or level < current_level:
                self.engine.advance_to_slot(level)
                current_level = level
            if u == tree.sink:
                continue
            parent = tree.parent[u]
            if parent is None:
                continue
            if not self.engine.alive(u):
                self._processed.add(u)
                yield Hop(u, None, STRAND_CRASHED)
                continue
            if not self.engine.alive(parent):
                parent = self._reparent(u) if self.config.reparent else None
            if parent is None:
                self._processed.add(u)
                yield Hop(u, None, STRAND_ORPHANED)
                continue
            yield Hop(u, parent)
            self._processed.add(u)
        self.engine.finish_epoch()

    def _reparent(self, u: int) -> Optional[int]:
        """Locally re-attach ``u`` after its parent crashed.

        ``u`` broadcasts a probe; every alive routed neighbour answers
        with its tree level; ``u`` adopts the best neighbour at a level
        below its own, or at its own level if that neighbour's slot has
        not passed yet (so the adopted reports still get forwarded this
        epoch).  Tie-break: (level, distance to sink, id).  All repair
        traffic is charged.  Returns the new parent or None.
        """
        # Imported here: repro.core.wire would otherwise close an import
        # cycle through repro.core.__init__ -> protocol -> repro.network.
        from repro.core.wire import (
            REPAIR_JOIN_BYTES,
            REPAIR_PROBE_BYTES,
            REPAIR_REPLY_BYTES,
        )

        engine = self.engine
        assert engine is not None
        tree = self.network.tree
        my_level = tree.level[u] or 0
        responders = [
            w
            for w in self.network.neighbor_lists[u]
            if engine.alive(w) and tree.level[w] is not None
        ]
        self.costs.charge_local_broadcast(u, responders, REPAIR_PROBE_BYTES)
        for w in responders:
            self.costs.charge_hop(w, u, REPAIR_REPLY_BYTES)
        candidates = [
            w
            for w in responders
            if (tree.level[w] or 0) < my_level
            or ((tree.level[w] or 0) == my_level and w not in self._processed)
        ]
        if not candidates:
            return None
        sink_pos = self.network.nodes[tree.sink].position
        best = min(
            candidates,
            key=lambda w: (
                tree.level[w],
                dist(self.network.nodes[w].position, sink_pos),
                w,
            ),
        )
        self.costs.charge_hop(u, best, REPAIR_JOIN_BYTES)
        self._report.repaired_orphans += 1
        return best

    # ------------------------------------------------------------------
    # Frame transmission
    # ------------------------------------------------------------------

    def send(
        self,
        sender: int,
        receiver: int,
        nbytes: int,
        rids: Sequence[int] = (),
        payload: Any = None,
    ) -> SendOutcome:
        """Carry one frame of ``nbytes`` over one hop.

        ``rids`` are the tracked report instances riding the frame (one
        for a plain report, many for an aggregate); on terminal failure
        they are bucketed here, so the caller only handles arrivals.
        """
        if self.engine is None:
            if self.link_model is not None:
                ok = charge_lossy_hop(
                    self.link_model,
                    sender,
                    receiver,
                    nbytes,
                    self.costs,
                    self._legacy_rng,
                )
                if not ok:
                    self._terminal(rids, _LOST)
                    return SendOutcome(False, [])
            else:
                self.costs.charge_hop(sender, receiver, nbytes)
            return SendOutcome(True, [(payload, False)])

        cfg = self.config
        engine = self.engine
        max_attempts = (cfg.max_retries + 1) if cfg.arq else 1
        last_was_corruption = False
        for attempt in range(1, max_attempts + 1):
            if attempt >= 2:
                self._report.retransmissions += 1
                self.costs.charge_ops(
                    sender,
                    min(cfg.backoff_base << (attempt - 2), cfg.backoff_cap),
                )
            self.costs.charge_hop(sender, receiver, nbytes)
            if not engine.link_attempt(sender, receiver):
                last_was_corruption = False
                continue
            if engine.corrupts():
                if cfg.crc:
                    # Receiver CRC-rejects; under ARQ the sender retries.
                    self._report.corrupted_detected += 1
                    last_was_corruption = True
                    continue
                accepted = (
                    self.mangler(payload, engine) if self.mangler else None
                )
                if accepted is None:
                    # No codec can make sense of the damage: discarded.
                    self._terminal(rids, _CORRUPTED)
                    return SendOutcome(False, [])
                self._report.corrupted_accepted += 1
            else:
                accepted = payload
            arrivals: List[Tuple[Any, bool]] = [(accepted, False)]
            if rids and engine.duplicates():
                # The duplicate frame still occupies both radios.
                self.costs.charge_hop(sender, receiver, nbytes)
                n = len(rids)
                self._report.duplicates_created += n
                self._open += n
                if cfg.dedup:
                    self._report.duplicate_discarded += n
                    self._open -= n
                else:
                    arrivals.append((accepted, True))
            return SendOutcome(True, arrivals)
        self._terminal(rids, _CORRUPTED if last_was_corruption else _LOST)
        return SendOutcome(False, [])

    # ------------------------------------------------------------------
    # Epoch close-out
    # ------------------------------------------------------------------

    def finalize(self) -> DegradationReport:
        """Fire remaining events, sweep leftovers, return the report."""
        if self.engine is not None:
            self.engine.finish_epoch()
            self._report.crashed_nodes = len(self.engine.crashed_nodes)
            self._report.recovered_nodes = len(self.engine.recovered_nodes)
        if self._open > 0:
            # Instances still buffered when the epoch ended (e.g. a report
            # generated at an undeliverable holder) never reached any
            # terminal bucket: they are lost to the sink.
            self._report.lost += self._open
            self._open = 0
        self._report.disconnected_regions = self._count_disconnected()
        return self._report

    def _count_disconnected(self) -> int:
        """Components of the end-of-epoch alive graph cut off the sink."""
        n = self.network.n_nodes
        alive = [
            self.network.nodes[i].alive
            and (self.engine is None or self.engine.alive(i))
            for i in range(n)
        ]
        seen = [False] * n
        regions = 0
        for start in range(n):
            if not alive[start] or seen[start]:
                continue
            seen[start] = True
            queue = deque([start])
            contains_sink = start == self.network.sink_index
            while queue:
                x = queue.popleft()
                for y in self.network.neighbor_lists[x]:
                    if alive[y] and not seen[y]:
                        seen[y] = True
                        contains_sink = contains_sink or y == self.network.sink_index
                        queue.append(y)
            if not contains_sink:
                regions += 1
        return regions
