"""Fault-tolerant collection transport shared by Iso-Map and every baseline.

One :class:`EpochTransport` instance drives one collection epoch: it
walks the routing tree bottom-up (the TAG slot schedule), fires the
:class:`~repro.network.faults.FaultPlan`'s scheduled events at the level
boundaries, and carries each protocol's frames hop by hop with the
defenses a real deployment would run:

- **ARQ** with capped exponential backoff: a frame lost or CRC-rejected
  on air is retransmitted up to ``max_retries`` times; every attempt
  burns tx energy at the sender and listen energy at the receiver, and
  each backoff window is charged as ops at the sender.
- **CRC**: corrupted frames are detected at the receiver and treated as
  losses (retried under ARQ).  CRC-16/CCITT-FALSE detects every burst of
  up to 3 flipped bits (Hamming distance 4 for frames this short), which
  is exactly the damage :meth:`FaultEngine.corrupt_payload` injects, so
  detection is modelled as certain; ``tests/network/test_transport.py``
  ties the model to the real :func:`repro.core.wire.check_crc`.  With
  the CRC *off*, a damaged frame is accepted: protocols that own a codec
  decode a poisoned report (the silently-wrong-map failure mode), the
  rest discard an unparseable frame.
- **Sequence-number duplicate suppression**: a duplicated frame (the
  classic lost-ACK retransmission) is dropped by the receiver's seq
  filter; with dedup off the copy propagates, costing energy and
  polluting filters/aggregates downstream.
- **Local orphan re-parenting**: a node whose parent crashed probes its
  alive neighbours and re-attaches to one at level <= its own -- an
  O(degree) repair instead of the global ``rebuild_tree()``; probe,
  reply and join traffic is charged.

Framing note: the CRC trailer, sequence numbers and link-layer ACKs ride
inside the per-hop framing the paper's byte budget already implies (see
:mod:`repro.core.wire`), so a fault-free epoch through this transport
charges *exactly* the bytes the direct ``charge_hop`` path charged --
the golden snapshot is byte-identical under a zero-fault plan.  The
transport charges only work that would not happen on a perfect link:
retransmissions, duplicate frames, backoff windows and repair messages.

Accounting is per frame *instance*: ``generated`` report instances plus
``duplicates_created`` copies each end in exactly one terminal bucket
(``delivered``, ``dropped_by_filter``, ``lost``, ``corrupted_discarded``
or ``duplicate_discarded``), which is the conservation law
:meth:`DegradationReport.is_conserved` checks.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import profiling
from repro.geometry import dist
from repro.network.accounting import CostAccountant
from repro.network.faults import FaultEngine, FaultPlan
from repro.network.links import LossyLinkModel, charge_lossy_hop
from repro.network.network import SensorNetwork
from repro.network.tiling import (
    AttemptResolution,
    TilePartition,
    reduce_attempt_draws,
    resolve_tile_job,
)

#: Terminal buckets (DegradationReport counter names) an instance can hit.
_LOST = "lost"
_CORRUPTED = "corrupted_discarded"

#: Strand reasons reported by :meth:`EpochTransport.walk`.
STRAND_CRASHED = "crashed"
STRAND_ORPHANED = "orphaned"

#: A receiver-side payload mangler: called when a corrupted frame is
#: accepted (CRC off); returns the poisoned payload the receiver decodes,
#: or None when the damage makes the frame unparseable.
Mangler = Callable[[Any, FaultEngine], Optional[Any]]


@dataclass(frozen=True)
class TransportConfig:
    """Defense knobs of the fault-tolerant transport.

    Attributes:
        arq: retransmit frames lost or CRC-rejected on air.
        max_retries: retransmissions after the first attempt (so at most
            ``max_retries + 1`` attempts per frame), matching
            :class:`LossyLinkModel`'s budget shape.
        backoff_base / backoff_cap: retry ``k`` (k >= 1) charges
            ``min(backoff_base << (k - 1), backoff_cap)`` ops at the
            sender -- the capped exponential backoff listen window.
        crc: receivers CRC-check frames and reject damaged ones.
        dedup: receivers drop duplicate frames by sequence number.
        reparent: nodes whose parent crashed locally re-attach to an
            alive neighbour at level <= their own (repair traffic is
            charged) instead of stranding their buffered reports.
        batched: resolve each tree level's frames as arrays in
            :meth:`EpochTransport.run_collection` (bit-identical to the
            scalar walk by construction; turn off to run the retained
            per-frame reference path).
    """

    arq: bool = True
    max_retries: int = 3
    backoff_base: int = 1
    backoff_cap: int = 8
    crc: bool = True
    dedup: bool = True
    reparent: bool = True
    batched: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative")

    @staticmethod
    def hardened() -> "TransportConfig":
        """Every defense on (the default)."""
        return TransportConfig()

    @staticmethod
    def vanilla() -> "TransportConfig":
        """The paper's implicit transport: no defenses at all."""
        return TransportConfig(
            arq=False, max_retries=0, crc=False, dedup=False, reparent=False
        )


@dataclass
class DegradationReport:
    """What one epoch's collection lost, repaired and discarded.

    Instance conservation: ``delivered + dropped_by_filter + lost +
    corrupted_discarded + duplicate_discarded == generated +
    duplicates_created`` (each generated report instance and each
    injected copy ends in exactly one bucket).

    Attributes:
        generated: report instances registered by the protocol.
        delivered: distinct reports that reached the sink.
        dropped_by_filter: instances rejected by in-network filtering.
        lost: instances lost on air (retries exhausted) or stranded in a
            crashed/orphaned node's buffer.
        corrupted_discarded: instances discarded because their frame
            arrived damaged beyond use (retries exhausted under CRC, or
            unparseable without one).
        duplicate_discarded: injected copies suppressed by seq-number
            dedup, plus extra sink arrivals of an already-delivered
            report.
        duplicates_created: copies injected by the fault plan.
        corrupted_detected: damaged frames caught by the CRC (each was
            retried or finally discarded).
        corrupted_accepted: damaged frames accepted without a CRC and
            decoded into poisoned reports that kept flowing.
        retransmissions: ARQ retry attempts that went on air.
        repaired_orphans: nodes locally re-attached after their parent
            crashed.
        stranded_crashed / stranded_orphaned: instances stranded in a
            crashed node's buffer / in an orphan that found no new parent
            (both also counted in ``lost``).
        crashed_nodes / recovered_nodes: mid-epoch node events fired.
        disconnected_regions: connected components of the end-of-epoch
            alive communication graph that cannot reach the sink.
        per_group: group key -> [generated, delivered]; Iso-Map groups by
            isolevel, giving the per-isolevel delivery rate.
    """

    generated: int = 0
    delivered: int = 0
    dropped_by_filter: int = 0
    lost: int = 0
    corrupted_discarded: int = 0
    duplicate_discarded: int = 0
    duplicates_created: int = 0
    corrupted_detected: int = 0
    corrupted_accepted: int = 0
    retransmissions: int = 0
    repaired_orphans: int = 0
    stranded_crashed: int = 0
    stranded_orphaned: int = 0
    crashed_nodes: int = 0
    recovered_nodes: int = 0
    disconnected_regions: int = 0
    per_group: Dict[Any, List[int]] = field(default_factory=dict)

    @property
    def is_conserved(self) -> bool:
        """Does every instance land in exactly one terminal bucket?"""
        return (
            self.delivered
            + self.dropped_by_filter
            + self.lost
            + self.corrupted_discarded
            + self.duplicate_discarded
            == self.generated + self.duplicates_created
        )

    def delivery_rate(self) -> float:
        """Fraction of generated reports that reached the sink."""
        return self.delivered / self.generated if self.generated else 1.0

    def group_delivery_rates(self) -> Dict[Any, float]:
        """Per-group (per-isolevel for Iso-Map) delivery rates."""
        return {
            g: (d / g_gen if g_gen else 1.0)
            for g, (g_gen, d) in self.per_group.items()
        }

    @property
    def is_degraded(self) -> bool:
        """Anything at all to worry about in this epoch's map?"""
        return (
            self.lost > 0
            or self.corrupted_discarded > 0
            or self.corrupted_accepted > 0
            or self.crashed_nodes > 0
            or self.disconnected_regions > 0
        )

    def summary(self) -> Dict[str, float]:
        """A flat dict convenient for experiment tables."""
        return {
            "generated": float(self.generated),
            "delivered": float(self.delivered),
            "delivery_rate": self.delivery_rate(),
            "dropped_by_filter": float(self.dropped_by_filter),
            "lost": float(self.lost),
            "corrupted_discarded": float(self.corrupted_discarded),
            "corrupted_accepted": float(self.corrupted_accepted),
            "duplicate_discarded": float(self.duplicate_discarded),
            "retransmissions": float(self.retransmissions),
            "repaired_orphans": float(self.repaired_orphans),
            "crashed_nodes": float(self.crashed_nodes),
            "disconnected_regions": float(self.disconnected_regions),
        }


@dataclass(frozen=True)
class Hop:
    """One transmission opportunity yielded by :meth:`EpochTransport.walk`.

    ``parent`` is None when the node cannot transmit this epoch; then
    ``reason`` says why (:data:`STRAND_CRASHED` or
    :data:`STRAND_ORPHANED`) and the caller must
    :meth:`~EpochTransport.strand` the node's buffered instances.
    """

    node: int
    parent: Optional[int]
    reason: Optional[str] = None


@dataclass
class SendOutcome:
    """Result of one :meth:`EpochTransport.send`.

    Attributes:
        delivered: did (at least one copy of) the frame reach the
            receiver?
        arrivals: ``(payload, is_duplicate)`` per frame instance the
            receiver accepted -- empty on failure, one entry normally,
            two when a duplicate slipped past dedup.  A duplicate's
            payload is the *same object*; callers that mutate payloads
            (region aggregation) must clone it.
    """

    delivered: bool
    arrivals: List[Tuple[Any, bool]]


@dataclass
class OutFrame:
    """One frame a protocol hands to :meth:`EpochTransport.run_collection`.

    Attributes:
        nbytes: wire size of the frame.
        rids: tracked report instances riding it (one for a plain
            report, many for an aggregate).
        payload: what the receiver decodes on arrival.
    """

    nbytes: int
    rids: Tuple[int, ...]
    payload: Any = None


#: ``frames_for(node)``: pop and return the node's outbox at its slot.
#: Called exactly once per routed non-sink node, in walk order; for a
#: stranded node the returned frames are bucketed as lost by the driver.
FramesFor = Callable[[int], Sequence[OutFrame]]

#: ``on_arrival(sender, receiver, frame, payload, is_duplicate)``: one
#: accepted frame instance at the receiver (which may be the sink --
#: aggregating protocols absorb there too, so the driver never
#: special-cases it).  Payload is the frame's, possibly mangled.
OnArrival = Callable[[int, int, OutFrame, Any, bool], None]


class EpochTransport:
    """Carries one protocol's collection epoch over a faulty network.

    Args:
        network: the deployment (never mutated; crash state lives in the
            fault engine).
        costs: the run's accountant; all transport work is charged here.
        config: defense knobs; defaults to :meth:`TransportConfig.hardened`.
        plan: the fault plan; None or a null plan selects the exact
            fast path of the pre-transport code (byte-identical charges).
        link_model: the legacy Bernoulli+ARQ model of
            :mod:`repro.network.links`, honoured verbatim (same rng
            consumption order) for backward compatibility; mutually
            exclusive with a non-null ``plan``.
        link_seed: seed for the legacy link model's randomness.
        mangler: optional receiver-side decoder for corrupted frames
            accepted without a CRC (protocols with a real codec pass
            one; without it such frames are discarded as unparseable).
        tiling: optional :class:`~repro.network.tiling.TilePartition`;
            with a fault engine on the batched path, each level batch's
            draws resolve per sender-tile (memory bounded by the
            largest tile's frames) and merge at a deterministic barrier
            -- bit-identical to the untiled batch at any tile layout.
        tile_jobs: worker processes for per-tile resolution (1 =
            resolve tiles inline; >1 ships tile jobs to a process pool
            and applies results in sorted-tile order, same bytes).
    """

    def __init__(
        self,
        network: SensorNetwork,
        costs: CostAccountant,
        config: Optional[TransportConfig] = None,
        plan: Optional[FaultPlan] = None,
        link_model: Optional[LossyLinkModel] = None,
        link_seed: int = 0,
        mangler: Optional[Mangler] = None,
        tiling: Optional[TilePartition] = None,
        tile_jobs: int = 1,
    ):
        self.network = network
        self.costs = costs
        self.config = config if config is not None else TransportConfig.hardened()
        self.mangler = mangler
        self.link_model = link_model
        self.tiling = tiling
        self.tile_jobs = max(1, int(tile_jobs))
        self._tile_pool = None
        self._legacy_rng = random.Random(link_seed)
        if plan is not None and not plan.is_null:
            if link_model is not None:
                raise ValueError(
                    "pass the link loss inside the FaultPlan (e.g. "
                    "BernoulliLink), not as a separate legacy link_model"
                )
            self.engine: Optional[FaultEngine] = FaultEngine(plan, network)
            # Fix every frame's draw budget up front: counter-based
            # streams address (frame, attempt) slots, so the budget must
            # be known before the first draw and stay constant.
            self.engine.attempts_per_frame = self._max_attempts()
        else:
            self.engine = None
        self._report = DegradationReport()
        self._open = 0  # instances registered/injected but not yet bucketed
        self._next_rid = 0
        self._group_of: Dict[int, Any] = {}
        self._delivered_rids: set = set()
        self._processed: set = set()  # nodes whose slot already passed

    # ------------------------------------------------------------------
    # Report registration and terminal buckets
    # ------------------------------------------------------------------

    def register(self, group: Any = None) -> int:
        """Register one generated report; returns its tracking id."""
        rid = self._next_rid
        self._next_rid += 1
        self._report.generated += 1
        self._open += 1
        if group is not None:
            self._group_of[rid] = group
            self._report.per_group.setdefault(group, [0, 0])[0] += 1
        return rid

    def mark_filtered(self, rid: int) -> None:
        """One instance of ``rid`` was rejected by in-network filtering."""
        self._report.dropped_by_filter += 1
        self._open -= 1

    def strand(self, rids: Sequence[int], reason: str) -> None:
        """Instances buffered in a node that cannot transmit are lost."""
        n = len(rids)
        self._report.lost += n
        self._open -= n
        if reason == STRAND_CRASHED:
            self._report.stranded_crashed += n
        else:
            self._report.stranded_orphaned += n

    def deliver_at_sink(self, rid: int) -> bool:
        """One instance of ``rid`` arrived at the sink.

        Returns True on the first arrival (count the report delivered);
        later arrivals are duplicate-discarded by the sink's seq filter.
        """
        self._open -= 1
        if rid in self._delivered_rids:
            self._report.duplicate_discarded += 1
            return False
        self._delivered_rids.add(rid)
        self._report.delivered += 1
        group = self._group_of.get(rid)
        if group is not None:
            self._report.per_group[group][1] += 1
        return True

    def _terminal(self, rids: Sequence[int], bucket: str) -> None:
        n = len(rids)
        if bucket == _LOST:
            self._report.lost += n
        else:
            self._report.corrupted_discarded += n
        self._open -= n

    # ------------------------------------------------------------------
    # The slotted bottom-up walk
    # ------------------------------------------------------------------

    def _max_attempts(self) -> int:
        return (self.config.max_retries + 1) if self.config.arq else 1

    def walk(self) -> Iterator[Hop]:
        """Yield one :class:`Hop` per routed non-sink node, children first.

        The fault-free path reproduces the classic
        ``subtree_order_bottom_up`` loop exactly.  Under a plan, node
        events fire at each level boundary, crashed holders yield a
        strand, and dead parents are locally repaired when the config
        allows.

        This is the scalar reference order; :meth:`run_collection`'s
        batched mode takes the same hops level-wise (see
        :meth:`walk_reference`, the differential-test anchor).
        """
        tree = self.network.tree
        order = tree.subtree_order_bottom_up()
        if self.engine is None:
            for u in order:
                if u == tree.sink:
                    continue
                parent = tree.parent[u]
                if parent is None:
                    continue
                yield Hop(u, parent)
            return

        current_level: Optional[int] = None
        for u in order:
            level = tree.level[u] or 0
            if current_level is None or level < current_level:
                self.engine.advance_to_slot(level)
                current_level = level
            if u == tree.sink:
                continue
            parent = tree.parent[u]
            if parent is None:
                continue
            if not self.engine.alive(u):
                self._processed.add(u)
                yield Hop(u, None, STRAND_CRASHED)
                continue
            if not self.engine.alive(parent):
                parent = self._reparent(u) if self.config.reparent else None
            if parent is None:
                self._processed.add(u)
                yield Hop(u, None, STRAND_ORPHANED)
                continue
            yield Hop(u, parent)
            self._processed.add(u)
        self.engine.finish_epoch()

    #: The scalar walk is the differential-test reference the batched
    #: level resolver is pinned against.
    walk_reference = walk

    def _reparent(self, u: int) -> Optional[int]:
        """Locally re-attach ``u`` after its parent crashed (scalar walk).

        A same-level neighbour is adoptable while its own slot has not
        passed, which in the scalar walk means it is not yet in
        ``_processed``.
        """
        return self._reparent_with(u, lambda w: w not in self._processed)

    def _reparent_with(
        self, u: int, slot_pending: Callable[[int], bool]
    ) -> Optional[int]:
        """Locally re-attach ``u`` after its parent crashed.

        ``u`` broadcasts a probe; every alive routed neighbour answers
        with its tree level; ``u`` adopts the best neighbour at a level
        below its own, or at its own level if that neighbour's slot has
        not passed yet (so the adopted reports still get forwarded this
        epoch) -- ``slot_pending`` answers that for the caller's walk
        order.  Tie-break: (level, distance to sink, id).  All repair
        traffic is charged.  Returns the new parent or None.
        """
        # Imported here: repro.core.wire would otherwise close an import
        # cycle through repro.core.__init__ -> protocol -> repro.network.
        from repro.core.wire import (
            REPAIR_JOIN_BYTES,
            REPAIR_PROBE_BYTES,
            REPAIR_REPLY_BYTES,
        )

        engine = self.engine
        assert engine is not None
        tree = self.network.tree
        my_level = tree.level[u] or 0
        responders = [
            w
            for w in self.network.neighbor_lists[u]
            if engine.alive(w) and tree.level[w] is not None
        ]
        self.costs.charge_local_broadcast(u, responders, REPAIR_PROBE_BYTES)
        for w in responders:
            self.costs.charge_hop(w, u, REPAIR_REPLY_BYTES)
        candidates = [
            w
            for w in responders
            if (tree.level[w] or 0) < my_level
            or ((tree.level[w] or 0) == my_level and slot_pending(w))
        ]
        if not candidates:
            return None
        sink_pos = self.network.nodes[tree.sink].position
        best = min(
            candidates,
            key=lambda w: (
                tree.level[w],
                dist(self.network.nodes[w].position, sink_pos),
                w,
            ),
        )
        self.costs.charge_hop(u, best, REPAIR_JOIN_BYTES)
        self._report.repaired_orphans += 1
        return best

    # ------------------------------------------------------------------
    # Frame transmission
    # ------------------------------------------------------------------

    def send(
        self,
        sender: int,
        receiver: int,
        nbytes: int,
        rids: Sequence[int] = (),
        payload: Any = None,
    ) -> SendOutcome:
        """Carry one frame of ``nbytes`` over one hop.

        ``rids`` are the tracked report instances riding the frame (one
        for a plain report, many for an aggregate); on terminal failure
        they are bucketed here, so the caller only handles arrivals.
        """
        if self.engine is None:
            if self.link_model is not None:
                ok = charge_lossy_hop(
                    self.link_model,
                    sender,
                    receiver,
                    nbytes,
                    self.costs,
                    self._legacy_rng,
                )
                if not ok:
                    self._terminal(rids, _LOST)
                    return SendOutcome(False, [])
            else:
                self.costs.charge_hop(sender, receiver, nbytes)
            return SendOutcome(True, [(payload, False)])

        cfg = self.config
        engine = self.engine
        max_attempts = self._max_attempts()
        frame = engine.next_frame(sender, receiver)
        last_was_corruption = False
        for attempt in range(1, max_attempts + 1):
            if attempt >= 2:
                self._report.retransmissions += 1
                self.costs.charge_ops(
                    sender,
                    min(cfg.backoff_base << (attempt - 2), cfg.backoff_cap),
                )
            self.costs.charge_hop(sender, receiver, nbytes)
            if not engine.link_ok(sender, receiver, frame, attempt):
                last_was_corruption = False
                continue
            if engine.corrupt_at(sender, receiver, frame, attempt):
                if cfg.crc:
                    # Receiver CRC-rejects; under ARQ the sender retries.
                    self._report.corrupted_detected += 1
                    last_was_corruption = True
                    continue
                accepted = (
                    self.mangler(payload, engine) if self.mangler else None
                )
                if accepted is None:
                    # No codec can make sense of the damage: discarded.
                    self._terminal(rids, _CORRUPTED)
                    return SendOutcome(False, [])
                self._report.corrupted_accepted += 1
            else:
                accepted = payload
            arrivals: List[Tuple[Any, bool]] = [(accepted, False)]
            if rids and engine.dup_at(sender, receiver, frame):
                # The duplicate frame still occupies both radios.
                self.costs.charge_hop(sender, receiver, nbytes)
                n = len(rids)
                self._report.duplicates_created += n
                self._open += n
                if cfg.dedup:
                    self._report.duplicate_discarded += n
                    self._open -= n
                else:
                    arrivals.append((accepted, True))
            return SendOutcome(True, arrivals)
        self._terminal(rids, _CORRUPTED if last_was_corruption else _LOST)
        return SendOutcome(False, [])

    # ------------------------------------------------------------------
    # The collection driver (scalar and slot-batched)
    # ------------------------------------------------------------------

    def run_collection(
        self,
        frames_for: FramesFor,
        on_arrival: OnArrival,
        ops_per_frame: int = 0,
    ) -> None:
        """Drive one whole collection epoch through protocol callbacks.

        Every protocol's collection loop is the same shape -- pop the
        node's outbox at its slot, send each frame to the parent, hand
        accepted frames to the receiver -- so the loop lives here once
        and the protocol supplies ``frames_for`` / ``on_arrival``.  That
        is also what lets the transport choose *how* to run the epoch:

        - the scalar reference path replays :meth:`walk` + :meth:`send`
          frame by frame (always used for the legacy ``link_model``,
          whose shared Mersenne stream is order-dependent);
        - with a fault engine and ``config.batched``, each tree level's
          frames are resolved as arrays (one batch of counter-based
          draws, one scatter-add per charge kind) -- bit-identical to
          the scalar path because every random draw has an
          order-independent address and every charge is an integer sum.

        ``ops_per_frame`` is charged at the sender for every frame
        handed over with a live parent (the store-and-forward bookkeeping
        some protocols charge per transmitted frame).
        """
        if self.engine is not None and self.config.batched:
            self._run_batched(frames_for, on_arrival, ops_per_frame)
        else:
            self._run_scalar(frames_for, on_arrival, ops_per_frame)

    def _run_scalar(
        self, frames_for: FramesFor, on_arrival: OnArrival, ops_per_frame: int
    ) -> None:
        """The per-frame reference loop (also the legacy-link path)."""
        for hop in self.walk():
            if hop.parent is None:
                for fr in frames_for(hop.node):
                    self.strand(fr.rids, hop.reason)
                continue
            for fr in frames_for(hop.node):
                if ops_per_frame:
                    self.costs.charge_ops(hop.node, ops_per_frame)
                outcome = self.send(
                    hop.node, hop.parent, fr.nbytes, rids=fr.rids, payload=fr.payload
                )
                for payload, is_dup in outcome.arrivals:
                    on_arrival(hop.node, hop.parent, fr, payload, is_dup)

    def _run_batched(
        self, frames_for: FramesFor, on_arrival: OnArrival, ops_per_frame: int
    ) -> None:
        """Resolve the walk level by level with batched draws.

        Per level (deepest first): fire the slot's fault events, decide
        each member's fate (crashed members strand, orphans locally
        re-parent), then send every live member's frames as one batch.
        A member that adopts a *same-level* neighbour forces a batch cut
        at the adopted parent, so the adopted frames are dispatched into
        its outbox before its own ``frames_for`` runs -- preserving the
        scalar walk's ascending-id semantics exactly (a same-level
        neighbour is adoptable iff its id is greater, which is the
        scalar ``not in _processed`` predicate at that point).
        """
        engine = self.engine
        assert engine is not None
        tree = self.network.tree
        cfg = self.config
        levels_arr = np.array(
            [-1 if l is None else l for l in tree.level], dtype=np.int64
        )
        parent_arr = np.array(
            [-1 if p is None else p for p in tree.parent], dtype=np.int64
        )
        for lvl in range(tree.depth, 0, -1):
            members = np.flatnonzero(levels_arr == lvl)
            if members.size == 0:
                continue
            engine.advance_to_slot(lvl)
            with profiling.stage("transport.batch.decide"):
                alive = engine.alive_array()
                m_alive = alive[members]
                parents = parent_arr[members]
                routed = parents >= 0
                p_alive = m_alive & routed & alive[np.where(routed, parents, 0)]
                new_parent: Dict[int, int] = {}
                cuts: set = set()
                if cfg.reparent:
                    orphaned = m_alive & routed & ~p_alive
                    for u in members[orphaned].tolist():
                        w = self._reparent_with(u, lambda x, _u=u: x > _u)
                        if w is not None:
                            new_parent[u] = w
                            if (tree.level[w] or 0) == lvl:
                                cuts.add(w)
            batch: List[Tuple[int, int, Sequence[OutFrame]]] = []
            members_list = members.tolist()
            m_alive_list = m_alive.tolist()
            p_alive_list = p_alive.tolist()
            parents_list = parents.tolist()
            for i, u in enumerate(members_list):
                if u in cuts and batch:
                    self._send_level_batch(batch, on_arrival, ops_per_frame)
                    batch = []
                if parents_list[i] < 0:
                    continue  # unrouted safety guard, as in the scalar walk
                if not m_alive_list[i]:
                    for fr in frames_for(u):
                        self.strand(fr.rids, STRAND_CRASHED)
                    continue
                if p_alive_list[i]:
                    p = parents_list[i]
                else:
                    p = new_parent.get(u)
                    if p is None:
                        for fr in frames_for(u):
                            self.strand(fr.rids, STRAND_ORPHANED)
                        continue
                frames = frames_for(u)
                if frames:
                    batch.append((u, p, frames))
            if batch:
                self._send_level_batch(batch, on_arrival, ops_per_frame)
        engine.finish_epoch()

    def _backoff_prefix(self, max_attempts: int) -> np.ndarray:
        """``prefix[j]`` = backoff ops charged over attempts ``2..j``."""
        cached = getattr(self, "_backoff_prefix_arr", None)
        if cached is None or len(cached) != max_attempts + 1:
            cfg = self.config
            prefix = np.zeros(max_attempts + 1, dtype=np.int64)
            for a in range(2, max_attempts + 1):
                prefix[a] = prefix[a - 1] + min(
                    cfg.backoff_base << (a - 2), cfg.backoff_cap
                )
            self._backoff_prefix_arr = prefix
            cached = prefix
        return cached

    def _send_level_batch(
        self,
        batch: List[Tuple[int, int, Sequence[OutFrame]]],
        on_arrival: OnArrival,
        ops_per_frame: int,
    ) -> None:
        """Resolve one batch of frames (contiguous per sender) as arrays.

        Mirrors :meth:`send` exactly: the ARQ loop becomes a first-hit
        search over the precomputed attempt outcomes, the per-attempt
        charges become closed-form sums, and only the rare receiver-side
        branches (mangled acceptance, terminal bucketing of mangler
        discards) drop back to per-frame Python -- in ascending frame
        order, which keeps the Mersenne damage stream aligned with the
        scalar walk.
        """
        engine = self.engine
        cfg = self.config
        report = self._report
        max_attempts = self._max_attempts()

        with profiling.stage("transport.batch.send"):
            edges = [(u, p) for (u, p, _) in batch]
            counts = np.fromiter(
                (len(frames) for (_, _, frames) in batch),
                np.int64,
                count=len(batch),
            )
            flat_frames: List[OutFrame] = [
                fr for (_, _, frames) in batch for fr in frames
            ]
            total = len(flat_frames)
            senders = np.repeat(
                np.fromiter((u for (u, _, _) in batch), np.int64, count=len(batch)),
                counts,
            )
            receivers = np.repeat(
                np.fromiter((p for (_, p, _) in batch), np.int64, count=len(batch)),
                counts,
            )
            nbytes = np.fromiter(
                (fr.nbytes for fr in flat_frames), np.int64, count=total
            )
            nrids = np.fromiter(
                (len(fr.rids) for fr in flat_frames), np.int64, count=total
            )

            if self.tiling is None:
                air_ok, corr, dup = engine.frame_draws_batch(edges, counts)
                res = reduce_attempt_draws(air_ok, corr, cfg.crc, max_attempts)
            else:
                res, dup = self._resolve_batch_tiled(batch, edges, counts, total)
            delivered = res.delivered
            attempts_used = res.attempts_used

            if cfg.crc:
                report.corrupted_detected += res.corrupted_detected
            report.retransmissions += int((attempts_used - 1).sum())

            # Receiver-side resolution of frames that arrived damaged
            # without a CRC (rare; per-frame, ascending order).
            accepted = delivered.copy()
            mangled: Dict[int, Any] = {}
            if not cfg.crc:
                for j in np.flatnonzero(delivered & res.corr_res).tolist():
                    fr = flat_frames[j]
                    acc = self.mangler(fr.payload, engine) if self.mangler else None
                    if acc is None:
                        accepted[j] = False
                        self._terminal(fr.rids, _CORRUPTED)
                    else:
                        report.corrupted_accepted += 1
                        mangled[j] = acc

            # Duplication applies to accepted frames carrying rids; the
            # copy occupies both radios either way, dedup decides whether
            # it propagates.
            dup_apply = accepted & dup & (nrids > 0)
            n_dup_rids = int(nrids[dup_apply].sum())
            if n_dup_rids:
                report.duplicates_created += n_dup_rids
                self._open += n_dup_rids
                if cfg.dedup:
                    report.duplicate_discarded += n_dup_rids
                    self._open -= n_dup_rids

            # Terminal buckets for frames that never got through.  A
            # CRC-rejected final attempt is a corruption discard; plain
            # exhaustion is a loss.  (Without a CRC only link loss can
            # exhaust the loop; mangler discards were bucketed above.)
            failed = ~delivered
            if failed.any():
                corr_fail = res.corr_fail
                n_corr = int(nrids[corr_fail].sum())
                n_lost = int(nrids[failed & ~corr_fail].sum())
                report.corrupted_discarded += n_corr
                report.lost += n_lost
                self._open -= n_corr + n_lost

            # One scatter-add per counter for the whole batch.
            total_bytes = attempts_used * nbytes + np.where(dup_apply, nbytes, 0)
            self.costs.charge_tx_batch(senders, total_bytes)
            self.costs.charge_rx_batch(receivers, total_bytes)
            ops_amounts = self._backoff_prefix(max_attempts)[attempts_used]
            if ops_per_frame:
                ops_amounts = ops_amounts + ops_per_frame
            self.costs.charge_ops_batch(senders, ops_amounts)

        with profiling.stage("transport.batch.dispatch"):
            propagate_dup = not cfg.dedup
            dup_flags = dup_apply.tolist()
            senders_list = senders.tolist()
            receivers_list = receivers.tolist()
            for j in np.flatnonzero(accepted).tolist():
                fr = flat_frames[j]
                payload = mangled.get(j, fr.payload)
                on_arrival(senders_list[j], receivers_list[j], fr, payload, False)
                if propagate_dup and dup_flags[j]:
                    on_arrival(senders_list[j], receivers_list[j], fr, payload, True)

    def _resolve_batch_tiled(
        self,
        batch: List[Tuple[int, int, Sequence[OutFrame]]],
        edges: List[Tuple[int, int]],
        counts: np.ndarray,
        total: int,
    ) -> Tuple[AttemptResolution, np.ndarray]:
        """Per-tile draw resolution feeding the deterministic merge barrier.

        Frames group by the *sender's* tile: each directed edge is owned
        exclusively by its sender, so per-edge frame cursors and
        burst-chain checkpoints partition cleanly across tiles, and every
        draw keeps its ``(edge, frame, attempt)`` address -- the scattered
        outcome vectors are bit-identical to the single global batch at
        any tile layout.  Only per-frame outcome arrays come back here;
        everything order-sensitive (the Mersenne damage stream, receiver
        dispatch, charges) happens afterwards at the merge barrier in
        global flat order, which is why tiles may resolve inline, out of
        order, or in worker processes without changing a byte.
        """
        engine = self.engine
        assert engine is not None
        cfg = self.config
        max_attempts = self._max_attempts()
        tile_of = self.tiling.tile_id
        offsets = np.zeros(len(batch) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        groups: Dict[int, List[int]] = {}
        for i, (u, _p, _frames) in enumerate(batch):
            groups.setdefault(int(tile_of[u]), []).append(i)
        order = sorted(groups)

        delivered = np.zeros(total, dtype=bool)
        attempts_used = np.zeros(total, dtype=np.int64)
        corr_res = np.zeros(total, dtype=bool)
        corr_fail = np.zeros(total, dtype=bool)
        dup = np.zeros(total, dtype=bool)
        detected = 0

        def slots_for(idxs: List[int]) -> np.ndarray:
            return np.concatenate(
                [np.arange(offsets[i], offsets[i + 1]) for i in idxs]
            )

        with profiling.stage("transport.tile.resolve"):
            if self.tile_jobs > 1 and len(order) > 1:
                pool = self._ensure_tile_pool()
                jobs = []
                for t in order:
                    idxs = groups[t]
                    t_edges = [edges[i] for i in idxs]
                    # _edge() only lazily creates cursors; reading them
                    # here is side-effect-free on outcomes.
                    streams = [engine._edge(u, v) for (u, v) in t_edges]
                    payload = (
                        engine.plan,
                        engine.attempts_per_frame,
                        cfg.crc,
                        tuple(t_edges),
                        tuple(int(counts[i]) for i in idxs),
                        tuple(es.frame for es in streams),
                        tuple(es.ge_t for es in streams),
                        tuple(es.ge_state for es in streams),
                        profiling.is_enabled(),
                    )
                    jobs.append(
                        (idxs, streams, pool.submit(resolve_tile_job, payload))
                    )
                # Apply in sorted-tile order: cursor write-back and the
                # profiling merge are the only shared state, and both are
                # per-edge / commutative, so this order is purely for
                # reproducible bookkeeping.
                for idxs, streams, fut in jobs:
                    (d, au, cr, cf, det, dp, cursors, snap) = fut.result()
                    for es, (f, gt, gs) in zip(streams, cursors):
                        es.frame = int(f)
                        es.ge_t = int(gt)
                        es.ge_state = bool(gs)
                    sl = slots_for(idxs)
                    delivered[sl] = d
                    attempts_used[sl] = au
                    corr_res[sl] = cr
                    corr_fail[sl] = cf
                    dup[sl] = dp
                    detected += det
                    if snap:
                        profiling.merge_snapshot(snap)
            else:
                for t in order:
                    idxs = groups[t]
                    t_edges = [edges[i] for i in idxs]
                    with profiling.stage("transport.tile.draws"):
                        air_ok, corr, dp = engine.frame_draws_batch(
                            t_edges, counts[idxs]
                        )
                        r = reduce_attempt_draws(
                            air_ok, corr, cfg.crc, max_attempts
                        )
                    sl = slots_for(idxs)
                    delivered[sl] = r.delivered
                    attempts_used[sl] = r.attempts_used
                    corr_res[sl] = r.corr_res
                    corr_fail[sl] = r.corr_fail
                    dup[sl] = dp
                    detected += r.corrupted_detected
        res = AttemptResolution(
            delivered=delivered,
            attempts_used=attempts_used,
            corr_res=corr_res,
            corr_fail=corr_fail,
            corrupted_detected=detected,
        )
        return res, dup

    def _ensure_tile_pool(self):
        if self._tile_pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._tile_pool = ProcessPoolExecutor(max_workers=self.tile_jobs)
        return self._tile_pool

    # ------------------------------------------------------------------
    # Epoch close-out
    # ------------------------------------------------------------------

    def finalize(self) -> DegradationReport:
        """Fire remaining events, sweep leftovers, return the report."""
        if self._tile_pool is not None:
            self._tile_pool.shutdown()
            self._tile_pool = None
        if self.engine is not None:
            self.engine.finish_epoch()
            self._report.crashed_nodes = len(self.engine.crashed_nodes)
            self._report.recovered_nodes = len(self.engine.recovered_nodes)
        if self._open > 0:
            # Instances still buffered when the epoch ended (e.g. a report
            # generated at an undeliverable holder) never reached any
            # terminal bucket: they are lost to the sink.
            self._report.lost += self._open
            self._open = 0
        self._report.disconnected_regions = self._count_disconnected()
        return self._report

    def _count_disconnected(self) -> int:
        """Components of the end-of-epoch alive graph cut off the sink.

        First floods the sink's component with an array-frontier BFS over
        the CSR adjacency (one gather per hop ring instead of a Python
        loop over every node's neighbour list), then counts components
        among the -- typically few -- alive nodes left over with the
        scalar sweep.  Differential-tested against
        :meth:`_count_disconnected_reference`, the retained full scan.
        """
        net = self.network
        n = net.n_nodes
        alive = np.fromiter((nd.alive for nd in net.nodes), dtype=bool, count=n)
        if self.engine is not None:
            alive &= self.engine.alive_array()
        csr = net.csr
        seen = np.zeros(n, dtype=bool)
        sink = net.sink_index
        if alive[sink]:
            seen[sink] = True
            frontier = np.array([sink], dtype=np.int64)
            while frontier.size:
                starts = csr.indptr[frontier]
                counts = csr.indptr[frontier + 1] - starts
                total = int(counts.sum())
                if total == 0:
                    break
                base = np.repeat(starts, counts)
                within = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                cand = csr.indices[base + within]
                cand = cand[alive[cand] & ~seen[cand]]
                if cand.size == 0:
                    break
                frontier = np.unique(cand)
                seen[frontier] = True
        leftover = np.flatnonzero(alive & ~seen)
        if leftover.size == 0:
            return 0
        regions = 0
        nbrs = net.neighbor_lists
        for start in leftover.tolist():
            if seen[start]:
                continue
            seen[start] = True
            regions += 1
            queue = deque([start])
            while queue:
                x = queue.popleft()
                for y in nbrs[x]:
                    if alive[y] and not seen[y]:
                        seen[y] = True
                        queue.append(y)
        return regions

    def _count_disconnected_reference(self) -> int:
        """The scalar full-graph sweep (differential-test reference)."""
        n = self.network.n_nodes
        alive = [
            self.network.nodes[i].alive
            and (self.engine is None or self.engine.alive(i))
            for i in range(n)
        ]
        seen = [False] * n
        regions = 0
        for start in range(n):
            if not alive[start] or seen[start]:
                continue
            seen[start] = True
            queue = deque([start])
            contains_sink = start == self.network.sink_index
            while queue:
                x = queue.popleft()
                for y in self.network.neighbor_lists[x]:
                    if alive[y] and not seen[y]:
                        seen[y] = True
                        contains_sink = contains_sink or y == self.network.sink_index
                        queue.append(y)
            if not contains_sink:
                regions += 1
        return regions
