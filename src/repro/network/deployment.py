"""Node-placement strategies.

The paper deploys ``n`` nodes over a normalised ``sqrt(n) x sqrt(n)`` field
(density 1) either uniformly at random (Iso-Map's default) or on a regular
grid (required by TinyDB, INLR and the data-suppression protocol --
Section 4.3).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.geometry import BoundingBox, Vec


def uniform_random_deployment(
    n: int, bounds: BoundingBox, rng: Optional[random.Random] = None
) -> List[Vec]:
    """``n`` i.i.d. uniform positions in ``bounds``.

    Args:
        n: number of nodes (must be positive).
        bounds: deployment area.
        rng: source of randomness; a fresh seeded one keeps runs
            reproducible.
    """
    if n <= 0:
        raise ValueError("need a positive number of nodes")
    r = rng if rng is not None else random.Random()
    return [
        (r.uniform(bounds.xmin, bounds.xmax), r.uniform(bounds.ymin, bounds.ymax))
        for _ in range(n)
    ]


def grid_deployment(n: int, bounds: BoundingBox) -> List[Vec]:
    """Approximately ``n`` nodes on a regular grid filling ``bounds``.

    The grid is ``ceil(sqrt(n * aspect)) x ceil(sqrt(n / aspect))`` cells
    with one node at each cell centre, so the returned count is the nearest
    realisable grid size at or above ``n`` aspect-matched; callers that
    need the exact count can slice, but the protocols here only care about
    density.
    """
    if n <= 0:
        raise ValueError("need a positive number of nodes")
    aspect = bounds.width / bounds.height
    nx = max(1, round(math.sqrt(n * aspect)))
    ny = max(1, round(math.sqrt(n / aspect)))
    while nx * ny < n:
        if nx <= ny:
            nx += 1
        else:
            ny += 1
    return bounds.sample_grid(nx, ny)


def jittered_grid_deployment(
    n: int,
    bounds: BoundingBox,
    jitter: float = 0.25,
    rng: Optional[random.Random] = None,
) -> List[Vec]:
    """A grid deployment with per-node uniform jitter.

    ``jitter`` is the maximum displacement as a fraction of the grid cell
    side.  Models imperfect buoy anchoring: nominally regular, locally
    perturbed.
    """
    if not 0 <= jitter <= 0.5:
        raise ValueError("jitter must be in [0, 0.5] of a cell side")
    r = rng if rng is not None else random.Random()
    pts = grid_deployment(n, bounds)
    if not pts:
        return pts
    # Infer the cell side from the first two x-distinct points.
    side = bounds.width / max(1, round(math.sqrt(n * bounds.width / bounds.height)))
    out = []
    for (x, y) in pts:
        dx = r.uniform(-jitter, jitter) * side
        dy = r.uniform(-jitter, jitter) * side
        out.append(bounds.clamp((x + dx, y + dy)))
    return out
