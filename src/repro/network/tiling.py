"""Spatial tile-sharding of the epoch pipeline (the million-node path).

The deployment is partitioned into a regular grid of square tiles.  Two
independent consumers ride the partition:

- **Topology construction** (:func:`build_csr_adjacency_tiled`,
  :func:`tile_skeleton`): each tile builds the disk-graph edges of its
  members from the members plus a one-ring *halo* (nodes of the eight
  adjacent tiles within ``radio_range`` of the tile's box), so no tile
  ever materialises more than its own neighbourhood.  Every undirected
  edge is emitted by exactly one tile -- the tile owning the smaller
  endpoint id -- and :meth:`CsrAdjacency.from_edges` sorts edges into
  canonical row order, so the concatenated result is *array-identical*
  to the untiled build at any tile size.

- **Transport resolution** (:class:`TilePartition` +
  ``EpochTransport(tiling=...)``): a level batch's frames are grouped by
  the *sender's* tile and each tile's fault draws resolve independently.
  Each directed edge is owned exclusively by its sender, so the
  per-edge frame cursors and burst-chain checkpoints partition cleanly
  across tiles, and because every draw is addressed by
  ``(edge, frame, attempt)`` (counter-based streams, PR 5) the outcomes
  are bit-identical to the single global batch regardless of tile
  layout or resolution order.  All order-sensitive work -- the Mersenne
  payload-damage stream, receiver dispatch, charge scatter-adds -- stays
  at the transport's merge barrier in global flat order.

The ``tile_size >= radio_range`` constraint applies only to the
halo-based adjacency builder (a one-ring halo must cover the radio
disk); transport tiling is correct for *any* partition of senders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro import profiling
from repro.network.topology import CsrAdjacency, _disk_edges


@dataclass(frozen=True)
class TileGrid:
    """A regular grid of square tiles over a bounding box.

    Tile ``(tx, ty)`` covers ``[xmin + tx*s, xmin + (tx+1)*s) x [ymin +
    ty*s, ymin + (ty+1)*s)``; the last row/column absorbs any remainder
    up to the box edge.  A point exactly on an interior tile line
    belongs to the *higher* tile (half-open cells); a point exactly on
    the box's far edge clamps into the last tile.
    """

    xmin: float
    ymin: float
    tile_size: float
    nx: int
    ny: int

    @staticmethod
    def for_bounds(bounds: Any, tile_size: float) -> "TileGrid":
        if tile_size <= 0:
            raise ValueError("tile size must be positive")
        nx = max(1, int(np.ceil((bounds.xmax - bounds.xmin) / tile_size)))
        ny = max(1, int(np.ceil((bounds.ymax - bounds.ymin) / tile_size)))
        return TileGrid(
            xmin=bounds.xmin, ymin=bounds.ymin, tile_size=tile_size, nx=nx, ny=ny
        )

    @property
    def n_tiles(self) -> int:
        return self.nx * self.ny

    def tile_coords(self, pts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-point ``(tx, ty)`` grid coordinates (vectorized)."""
        s = self.tile_size
        tx = np.floor((pts[:, 0] - self.xmin) / s).astype(np.int64)
        ty = np.floor((pts[:, 1] - self.ymin) / s).astype(np.int64)
        np.clip(tx, 0, self.nx - 1, out=tx)
        np.clip(ty, 0, self.ny - 1, out=ty)
        return tx, ty

    def tile_of(self, pts: np.ndarray) -> np.ndarray:
        """Per-point flat tile id ``ty * nx + tx``."""
        tx, ty = self.tile_coords(pts)
        return ty * np.int64(self.nx) + tx

    def box(self, t: int) -> Tuple[float, float, float, float]:
        """Nominal ``(x0, y0, x1, y1)`` of tile ``t`` (remainder ignored;
        only used for halo distance tests, where a slightly small last
        box can only *enlarge* the halo, never lose a neighbour)."""
        tx = t % self.nx
        ty = t // self.nx
        s = self.tile_size
        x0 = self.xmin + tx * s
        y0 = self.ymin + ty * s
        return x0, y0, x0 + s, y0 + s

    def adjacent_tiles(self, t: int) -> List[int]:
        """The up-to-eight grid neighbours of tile ``t``, ascending."""
        tx = t % self.nx
        ty = t // self.nx
        out: List[int] = []
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                ax, ay = tx + dx, ty + dy
                if 0 <= ax < self.nx and 0 <= ay < self.ny:
                    out.append(ay * self.nx + ax)
        out.sort()
        return out


@dataclass(frozen=True)
class TilePartition:
    """A deployment's node-to-tile assignment in CSR-over-tiles form.

    ``order[tile_start[t]:tile_start[t+1]]`` are tile ``t``'s member
    node ids in ascending order (the stable sort groups by tile and
    keeps id order within a tile), so per-tile iteration is
    deterministic by construction.
    """

    grid: TileGrid
    tile_id: np.ndarray  # (n,) node -> flat tile id
    order: np.ndarray  # (n,) node ids grouped by tile
    tile_start: np.ndarray  # (n_tiles + 1,)

    @staticmethod
    def build(
        positions: np.ndarray, bounds: Any, tile_size: float
    ) -> "TilePartition":
        pts = np.asarray(positions, dtype=float).reshape(-1, 2)
        grid = TileGrid.for_bounds(bounds, tile_size)
        tile_id = grid.tile_of(pts)
        order = np.argsort(tile_id, kind="stable")
        counts = np.bincount(tile_id, minlength=grid.n_tiles)
        tile_start = np.zeros(grid.n_tiles + 1, dtype=np.int64)
        np.cumsum(counts, out=tile_start[1:])
        return TilePartition(
            grid=grid, tile_id=tile_id, order=order, tile_start=tile_start
        )

    @property
    def n_tiles(self) -> int:
        return self.grid.n_tiles

    def members(self, t: int) -> np.ndarray:
        """Tile ``t``'s member node ids, ascending."""
        return self.order[self.tile_start[t] : self.tile_start[t + 1]]

    def occupied_tiles(self) -> np.ndarray:
        """Tile ids with at least one member, ascending."""
        return np.flatnonzero(np.diff(self.tile_start) > 0)

    def halo(self, pts: np.ndarray, t: int, radius: float) -> np.ndarray:
        """Members of the eight adjacent tiles within ``radius`` of tile
        ``t``'s box (point-to-box distance), ascending-by-tile order."""
        x0, y0, x1, y1 = self.grid.box(t)
        parts = [
            m for nb in self.grid.adjacent_tiles(t) if (m := self.members(nb)).size
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        cand = np.concatenate(parts)
        px = pts[cand, 0]
        py = pts[cand, 1]
        dx = np.maximum(np.maximum(x0 - px, px - x1), 0.0)
        dy = np.maximum(np.maximum(y0 - py, py - y1), 0.0)
        return cand[dx * dx + dy * dy <= radius * radius]


def build_csr_adjacency_tiled(
    positions: Sequence,
    radio_range: float,
    partition: TilePartition,
) -> CsrAdjacency:
    """Unit-disk CSR adjacency built one tile at a time.

    Memory is bounded by the largest members+halo neighbourhood instead
    of the whole deployment's candidate set.  Each tile runs the same
    :func:`_disk_edges` kernel on its sub-positions; an edge is kept by
    the tile owning its smaller endpoint (``tile_id[min(i, j)] == t``),
    so every undirected edge is emitted exactly once globally, and
    :meth:`CsrAdjacency.from_edges` canonicalises the concatenated list
    into arrays identical to the untiled build.

    Requires ``tile_size >= radio_range``: the one-ring halo must cover
    every node's radio disk.
    """
    pts = np.asarray(positions, dtype=float).reshape(-1, 2)
    n = len(pts)
    if partition.grid.tile_size < radio_range:
        raise ValueError(
            "tiled adjacency needs tile_size >= radio_range "
            f"({partition.grid.tile_size} < {radio_range}): the one-ring "
            "halo would not cover the radio disk"
        )
    tile_id = partition.tile_id
    ii_parts: List[np.ndarray] = []
    jj_parts: List[np.ndarray] = []
    with profiling.stage("topology.build.tiled"):
        for t in partition.occupied_tiles().tolist():
            mem = partition.members(t)
            sub = np.concatenate([mem, partition.halo(pts, t, radio_range)])
            li, lj = _disk_edges(pts[sub], radio_range)
            if li.size == 0:
                continue
            gi = sub[li]
            gj = sub[lj]
            keep = tile_id[np.minimum(gi, gj)] == t
            if keep.any():
                ii_parts.append(gi[keep])
                jj_parts.append(gj[keep])
    if not ii_parts:
        return CsrAdjacency.from_edges(
            n, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
    return CsrAdjacency.from_edges(
        n, np.concatenate(ii_parts), np.concatenate(jj_parts)
    )


@dataclass(frozen=True)
class TileSkeleton:
    """One tile's on-demand local topology.

    ``nodes`` lists the tile's member node ids followed by its halo
    (``nodes[:n_members]`` are the members); ``csr`` is the disk graph
    over that sub-deployment in local indices.  Member rows equal the
    induced global adjacency exactly (every global neighbour of a member
    is within the halo); halo rows may miss their own far-side
    neighbours and exist only to close the members' edges.
    """

    tile: int
    nodes: np.ndarray
    n_members: int
    csr: CsrAdjacency


def tile_skeleton(
    positions: Sequence,
    radio_range: float,
    partition: TilePartition,
    t: int,
) -> TileSkeleton:
    """Build tile ``t``'s :class:`TileSkeleton` (streaming construction)."""
    pts = np.asarray(positions, dtype=float).reshape(-1, 2)
    if partition.grid.tile_size < radio_range:
        raise ValueError("tile skeletons need tile_size >= radio_range")
    mem = partition.members(t)
    sub = np.concatenate([mem, partition.halo(pts, t, radio_range)])
    li, lj = _disk_edges(pts[sub], radio_range)
    return TileSkeleton(
        tile=t,
        nodes=sub,
        n_members=int(mem.size),
        csr=CsrAdjacency.from_edges(len(sub), li, lj),
    )


# ----------------------------------------------------------------------
# Shared ARQ attempt reduction (the half of _send_level_batch that is
# per-frame pure math, reused by the untiled, per-tile-inline and
# per-tile-worker resolution paths).
# ----------------------------------------------------------------------


@dataclass
class AttemptResolution:
    """Per-frame outcome of the batched ARQ loop over precomputed draws.

    Attributes:
        delivered: did any attempt resolve the frame?
        attempts_used: attempts that went on air (1..A).
        corr_res: resolving attempt arrived damaged (CRC off only).
        corr_fail: final attempt arrived but was CRC-rejected, so the
            exhaustion is a corruption discard (CRC on only).
        corrupted_detected: damaged frames the CRC caught (CRC on only).
    """

    delivered: np.ndarray
    attempts_used: np.ndarray
    corr_res: np.ndarray
    corr_fail: np.ndarray
    corrupted_detected: int


def reduce_attempt_draws(
    air_ok: np.ndarray, corr: np.ndarray, crc: bool, max_attempts: int
) -> AttemptResolution:
    """Collapse ``(F, A)`` attempt draws into per-frame ARQ outcomes.

    Mirrors the attempt loop of :meth:`EpochTransport.send` exactly: an
    attempt resolves the frame when it survives the air and -- under a
    CRC -- arrives undamaged (damaged ones are rejected and retried);
    without a CRC any on-air arrival ends the loop.
    """
    total = air_ok.shape[0]
    resolves = air_ok & ~corr if crc else air_ok
    delivered = resolves.any(axis=1)
    k_res = np.where(delivered, resolves.argmax(axis=1), max_attempts - 1)
    attempts_used = k_res + 1
    if crc:
        executed = np.arange(max_attempts)[None, :] < attempts_used[:, None]
        detected = int((air_ok & corr & executed).sum())
        corr_res = np.zeros(total, dtype=bool)
        corr_fail = (~delivered) & air_ok[:, -1] & corr[:, -1]
    else:
        detected = 0
        corr_res = corr[np.arange(total), k_res]
        corr_fail = np.zeros(total, dtype=bool)
    return AttemptResolution(
        delivered=delivered,
        attempts_used=attempts_used,
        corr_res=corr_res,
        corr_fail=corr_fail,
        corrupted_detected=detected,
    )


#: The picklable payload ``resolve_tile_job`` receives: ``(plan,
#: attempts_per_frame, crc, edges, counts, frame0, ge_t, ge_state,
#: profile)`` -- everything a worker needs to replay one tile's draws
#: without the engine object.
TileJobPayload = Tuple[
    Any, int, bool, tuple, tuple, tuple, tuple, tuple, bool
]


def resolve_tile_job(payload: TileJobPayload):
    """Resolve one tile's frame draws in a worker process.

    Rebuilds the tile's edge streams from the shipped cursors
    (:func:`repro.network.faults.frame_draws_detached`), draws and
    reduces, and returns plain arrays plus the advanced cursors for the
    parent to write back -- the worker never sees the engine, network or
    report state, so resolution order across tiles cannot matter.
    """
    from repro.network.faults import frame_draws_detached

    (plan, attempts, crc, edges, counts, frame0, ge_t, ge_state, profile) = payload
    if profile:
        profiling.reset()
        profiling.enable()
    with profiling.stage("transport.tile.draws"):
        air_ok, corr, dup, cursors = frame_draws_detached(
            plan, attempts, edges, counts, frame0, ge_t, ge_state
        )
        res = reduce_attempt_draws(air_ok, corr, crc, attempts)
    snap = profiling.snapshot() if profile else None
    return (
        res.delivered,
        res.attempts_used,
        res.corr_res,
        res.corr_fail,
        res.corrupted_detected,
        dup,
        cursors,
        snap,
    )
