"""Wireless-sensor-network simulation substrate.

Models what the paper assumes underneath Iso-Map (Section 3.1 and 5):
uniform-random or grid node deployment, a unit-disk radio with a
configurable range, a spanning routing tree rooted at the sink with
level-based forwarding, a perfect link layer, node failures, and exact
per-node accounting of transmitted/received bytes and arithmetic
operations.

- :mod:`repro.network.node` -- the sensor-node record.
- :mod:`repro.network.deployment` -- node placement strategies.
- :mod:`repro.network.topology` -- disk-radio adjacency via spatial hashing.
- :mod:`repro.network.routing_tree` -- BFS spanning tree and levels.
- :mod:`repro.network.accounting` -- per-node traffic/computation counters.
- :mod:`repro.network.network` -- the :class:`SensorNetwork` facade.
- :mod:`repro.network.faults` -- seeded mid-epoch fault injection.
- :mod:`repro.network.transport` -- the fault-tolerant collection
  transport shared by Iso-Map and every baseline.
"""

from repro.network.node import SensorNode
from repro.network.deployment import grid_deployment, uniform_random_deployment
from repro.network.topology import (
    CsrAdjacency,
    average_degree,
    build_adjacency,
    build_adjacency_reference,
    build_csr_adjacency,
    is_connected,
)
from repro.network.routing_tree import RoutingTree, build_routing_tree
from repro.network.accounting import CostAccountant
from repro.network.network import SensorNetwork
from repro.network.faults import (
    BernoulliLink,
    FaultEngine,
    FaultEvent,
    FaultPlan,
    GilbertElliottLink,
)
from repro.network.transport import (
    DegradationReport,
    EpochTransport,
    TransportConfig,
)

__all__ = [
    "SensorNode",
    "grid_deployment",
    "uniform_random_deployment",
    "build_adjacency",
    "build_adjacency_reference",
    "build_csr_adjacency",
    "CsrAdjacency",
    "average_degree",
    "is_connected",
    "RoutingTree",
    "build_routing_tree",
    "CostAccountant",
    "SensorNetwork",
    "BernoulliLink",
    "GilbertElliottLink",
    "FaultEvent",
    "FaultPlan",
    "FaultEngine",
    "DegradationReport",
    "EpochTransport",
    "TransportConfig",
]
