"""TAG-style slotted collection schedule and epoch latency.

Section 3.1: "Nodes in different levels forward packets during different
time slots."  This module models that schedule to measure a quantity the
paper's evaluation leaves implicit: how long one contour-mapping epoch
takes on air.

Model (one collection wave, deepest level first):

- the epoch is divided into one slot per tree level, scheduled from the
  deepest level up, so a report generated anywhere reaches the sink
  within the same epoch;
- within a level's slot, nodes share the channel spatially: two nodes
  interfere iff they are within ``interference_factor x radio_range`` of
  each other, so the slot must last as long as the worst *interference
  clique* of concurrently transmitting nodes needs (greedy colouring of
  the level's interference graph gives the serialisation factor);
- a node's airtime is its transmitted bytes at the radio's data rate.

The result is a lower-bound epoch latency under ideal TDMA -- the right
scale for comparing protocols, since all of them ride the same tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.energy.mica2 import Mica2Model
from repro.geometry import dist
from repro.network.accounting import CostAccountant
from repro.network.network import SensorNetwork


@dataclass(frozen=True)
class EpochSchedule:
    """Latency breakdown of one collection epoch.

    Attributes:
        slot_seconds: per tree level (index = level), the slot duration.
        epoch_seconds: total epoch latency (sum of slots).
        busiest_level: level whose slot is longest.
    """

    slot_seconds: List[float]
    epoch_seconds: float
    busiest_level: int


def epoch_latency(
    network: SensorNetwork,
    costs: CostAccountant,
    radio: Mica2Model = None,
    interference_factor: float = 2.0,
) -> EpochSchedule:
    """Schedule the charged transmissions and compute the epoch latency.

    Args:
        network: the routed network (levels come from its tree).
        costs: a completed protocol run's accountant -- ``tx_bytes`` is
            what each node must put on air during its level's slot.
        radio: data-rate source (default Mica2's CC1000 at 38.4 kbps).
        interference_factor: carrier-sense range as a multiple of the
            radio range (2.0 is the classic protocol-model choice).
    """
    r = radio if radio is not None else Mica2Model()
    seconds_per_byte = 8.0 / r.data_rate_bps
    interference_range = interference_factor * network.radio_range

    # Group transmitting nodes by tree level.
    by_level: Dict[int, List[int]] = {}
    for node in network.nodes:
        if node.level is None or node.level == 0:
            continue
        if costs.tx_bytes[node.node_id] > 0:
            by_level.setdefault(node.level, []).append(node.node_id)

    depth = network.tree.depth
    slots = [0.0] * (depth + 1)
    for level, members in by_level.items():
        airtimes = {
            i: float(costs.tx_bytes[i]) * seconds_per_byte for i in members
        }
        slots[level] = _slot_duration(network, members, airtimes, interference_range)

    total = sum(slots)
    busiest = max(range(len(slots)), key=lambda l: slots[l]) if slots else 0
    return EpochSchedule(
        slot_seconds=slots, epoch_seconds=total, busiest_level=busiest
    )


def _slot_duration(
    network: SensorNetwork,
    members: List[int],
    airtimes: Dict[int, float],
    interference_range: float,
) -> float:
    """Length of one level's slot under spatial-reuse TDMA.

    Nodes outside each other's interference range transmit concurrently.
    Greedy sequential colouring orders nodes by decreasing airtime (long
    talkers first); the slot lasts as long as the longest colour-class
    chain a node participates in -- computed as, per node, its own
    airtime plus the airtimes of earlier-coloured interferers, taking the
    maximum.  This upper-bounds the optimum within the usual greedy
    factor while staying O(m^2) for the (small) per-level member counts.
    """
    ordered = sorted(members, key=lambda i: -airtimes[i])
    finish: Dict[int, float] = {}
    worst = 0.0
    for i in ordered:
        start = 0.0
        for j in finish:
            if dist(network.nodes[i].position, network.nodes[j].position) <= interference_range:
                start = max(start, finish[j])
        finish[i] = start + airtimes[i]
        worst = max(worst, finish[i])
    return worst
