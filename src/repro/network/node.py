"""The sensor-node record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.geometry import Vec


@dataclass
class SensorNode:
    """One sensor in the field.

    Attributes:
        node_id: index into the network's node list.
        position: deployment position (known to the node through GPS or a
            localisation service -- Section 3.3 of the paper).
        value: the sensed attribute value (water depth in the harbor
            scenario).  Sampled from the scalar field at deployment; a
            sensing-noise model may perturb it.
        alive: crashed nodes neither sense, report, route, nor answer
            neighbourhood queries.
        sensing_ok: sensing-failed nodes produce no data (and answer no
            neighbourhood value queries) but keep forwarding packets.
            ``can_sense`` requires both flags; ``alive`` alone gates
            routing.
        level: hop distance from the sink along the routing tree
            (0 = the sink itself; ``None`` = unreachable).
        parent: routing-tree parent (``None`` for the sink / unreachable).
        children: routing-tree children.
    """

    node_id: int
    position: Vec
    value: float
    alive: bool = True
    sensing_ok: bool = True
    estimated_position: Optional[Vec] = None
    level: Optional[int] = None
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)

    def reset_routing(self) -> None:
        """Clear tree state before a (re)build."""
        self.level = None
        self.parent = None
        self.children = []

    @property
    def reachable(self) -> bool:
        """True when the node has a route to the sink."""
        return self.alive and self.level is not None

    @property
    def can_sense(self) -> bool:
        """True when the node produces data and answers value queries."""
        return self.alive and self.sensing_ok

    @property
    def app_position(self) -> Vec:
        """The position the APPLICATION believes the node is at.

        ``position`` is ground truth (where the node physically is, which
        governs sensing and radio); ``app_position`` is what goes into
        reports and regressions -- the localisation service's estimate
        when one ran (Section 3.3: positions come "from attached
        localization devices such as a GPS receiver or by one of existing
        algorithms"), else the truth.
        """
        return self.estimated_position if self.estimated_position is not None else self.position
