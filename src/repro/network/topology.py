"""Disk-radio communication graph.

Two nodes can communicate iff their distance is at most the radio range
(unit-disk model, perfect links -- Section 5 of the paper).  Adjacency is
computed with a spatial hash so building the graph is O(n) expected for
bounded density.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from repro.geometry import Vec


def build_adjacency(
    positions: Sequence[Vec], radio_range: float
) -> List[Set[int]]:
    """Neighbour sets under the unit-disk model.

    Args:
        positions: node positions.
        radio_range: maximum communication distance (the paper uses 1.5
            normalised units, i.e. 30 m for one node per 400 m^2).

    Returns:
        ``adj[i]`` = set of node indices within ``radio_range`` of node i
        (excluding i itself).
    """
    if radio_range <= 0:
        raise ValueError("radio range must be positive")
    n = len(positions)
    adj: List[Set[int]] = [set() for _ in range(n)]
    cell = radio_range
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for i, p in enumerate(positions):
        key = (int(math.floor(p[0] / cell)), int(math.floor(p[1] / cell)))
        buckets.setdefault(key, []).append(i)
    r2 = radio_range * radio_range
    for (kx, ky), members in buckets.items():
        neighbours_cells = [
            buckets.get((kx + dx, ky + dy), ())
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
        ]
        for i in members:
            xi, yi = positions[i]
            for other_cell in neighbours_cells:
                for j in other_cell:
                    if j <= i:
                        continue
                    xj, yj = positions[j]
                    dx = xi - xj
                    dy = yi - yj
                    if dx * dx + dy * dy <= r2:
                        adj[i].add(j)
                        adj[j].add(i)
    return adj


def average_degree(adj: Sequence[Set[int]], alive: Sequence[bool] = None) -> float:
    """Mean neighbour count, optionally restricted to alive nodes."""
    if alive is None:
        degrees = [len(s) for s in adj]
    else:
        degrees = [
            sum(1 for j in s if alive[j]) for i, s in enumerate(adj) if alive[i]
        ]
    if not degrees:
        return 0.0
    return sum(degrees) / len(degrees)


def is_connected(adj: Sequence[Set[int]], alive: Sequence[bool] = None) -> bool:
    """True when all (alive) nodes are mutually reachable."""
    n = len(adj)
    live = [True] * n if alive is None else list(alive)
    start = next((i for i in range(n) if live[i]), None)
    if start is None:
        return True  # vacuously connected
    seen = {start}
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if live[v] and v not in seen:
                seen.add(v)
                queue.append(v)
    return len(seen) == sum(live)


def k_hop_neighbors(
    adj: Sequence[Set[int]], start: int, k: int, alive: Sequence[bool] = None
) -> Set[int]:
    """All nodes within ``k`` hops of ``start`` (excluding ``start``).

    Iso-Map's gradient estimation queries the k-hop neighbourhood
    (Section 3.3: "the query scope can be adjusted within k-hop
    neighbors"); k = 1 is the default.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    n = len(adj)
    live = [True] * n if alive is None else alive
    seen = {start}
    frontier = {start}
    out: Set[int] = set()
    for _ in range(k):
        nxt: Set[int] = set()
        for u in frontier:
            for v in adj[u]:
                if live[v] and v not in seen:
                    seen.add(v)
                    nxt.add(v)
        out |= nxt
        frontier = nxt
        if not frontier:
            break
    return out
