"""Disk-radio communication graph.

Two nodes can communicate iff their distance is at most the radio range
(unit-disk model, perfect links -- Section 5 of the paper).  Adjacency is
computed with a spatial hash so building the graph is O(n) expected for
bounded density.

The hot kernels here are vectorized over a positions array: candidate
pairs come from bucketed block comparisons on a sorted cell code instead
of nested Python loops, and k-hop collection runs a frontier BFS on a CSR
adjacency.  The pure-Python originals are kept as ``*_reference``
implementations; differential tests assert the two agree exactly
(including nodes exactly at ``radio_range`` and on bucket borders), and
``benchmarks/bench_kernel.py`` tracks the speedup.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geometry import Vec


def build_adjacency(
    positions: Sequence[Vec], radio_range: float
) -> List[Set[int]]:
    """Neighbour sets under the unit-disk model (vectorized).

    Args:
        positions: node positions.
        radio_range: maximum communication distance (the paper uses 1.5
            normalised units, i.e. 30 m for one node per 400 m^2).

    Returns:
        ``adj[i]`` = set of node indices within ``radio_range`` of node i
        (excluding i itself).

    The distance test is the same ``dx*dx + dy*dy <= r*r`` the reference
    implementation evaluates, in the same IEEE-754 arithmetic, so the
    result is identical set-for-set -- only the candidate enumeration is
    batched.
    """
    return build_csr_adjacency(positions, radio_range).to_sets()


def build_csr_adjacency(
    positions: Sequence[Vec], radio_range: float
) -> "CsrAdjacency":
    """Unit-disk adjacency straight into CSR form (the hot-path kernel).

    This is what :class:`repro.network.SensorNetwork` consumes: the edge
    list is produced by the bucketed batch pass of :func:`_disk_edges`
    and laid out as CSR without ever materialising per-node Python sets
    (which dominate the cost of :func:`build_adjacency`).  Accepts a
    positions list or an ``(n, 2)`` array; pass the array on hot paths.
    """
    ii, jj = _disk_edges(positions, radio_range)
    return CsrAdjacency.from_edges(len(positions), ii, jj)


#: Default candidate budget of :func:`_disk_edges`' chunked pass: the
#: distance test is evaluated over at most this many candidate pairs at
#: a time (~2M pairs = a few dozen MB of scratch), so adjacency build
#: memory is O(n * degree) output plus an n-independent working set.
#: Deployments whose whole candidate set fits run the single monolithic
#: pass (bit-for-bit the historical behaviour and fastest at small n).
DISK_EDGE_CANDIDATE_BUDGET = 1 << 21


def _disk_edges(
    positions: Sequence[Vec],
    radio_range: float,
    max_candidates: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Unique unit-disk edges as parallel index arrays (each pair once).

    Candidate pairs are generated per spatial-hash bucket: nodes are
    sorted by an integer cell code, and for each of the five forward cell
    offsets (0,0), (1,0), (0,1), (1,1), (1,-1) every node is paired with
    the contiguous sorted block of its offset cell.  Each unordered cell
    pair is visited exactly once, so no edge is produced twice.

    When the total candidate count exceeds ``max_candidates`` (default
    :data:`DISK_EDGE_CANDIDATE_BUDGET`), the ragged gather is evaluated
    in block-aligned chunks: chunks cut only on candidate-block
    boundaries, so concatenating the per-chunk survivors reproduces the
    monolithic pass element for element.
    """
    if radio_range <= 0:
        raise ValueError("radio range must be positive")
    n = len(positions)
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return empty, empty
    pts = np.asarray(positions, dtype=float).reshape(n, 2)
    cell = radio_range
    cx = np.floor(pts[:, 0] / cell).astype(np.int64)
    cy = np.floor(pts[:, 1] / cell).astype(np.int64)
    # One collision-free integer per cell, with a +-1 margin in y so the
    # dy offsets of neighbouring cells never wrap across an x stripe.
    cy -= cy.min()
    span = int(cy.max()) + 3
    code = (cx - cx.min() + 1) * span + cy + 1
    order = np.argsort(code, kind="stable")
    sorted_codes = code[order]

    # Occupied cells as runs of the sorted codes.  All block lookups
    # happen per unique cell (a few hundred of them) rather than per
    # node, then broadcast back to nodes through ``cell_of``.
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=is_start[1:])
    cell_starts = np.flatnonzero(is_start)
    unique_codes = sorted_codes[cell_starts]
    cell_ends = np.append(cell_starts[1:], n)
    cell_sizes = cell_ends - cell_starts
    cell_of = np.cumsum(is_start) - 1  # sorted-domain node -> cell index
    n_cells = len(unique_codes)

    # Per cell, per forward offset: the sorted-domain block of candidate
    # partners.  Offset 0 (same cell) matches trivially; the other four
    # resolve with one searchsorted over the unique codes.
    offsets = np.array([span, 1, span + 1, span - 1], dtype=np.int64)
    targets = unique_codes[None, :] + offsets[:, None]
    pos = np.searchsorted(unique_codes, targets)
    pos_c = np.minimum(pos, n_cells - 1)
    hit = unique_codes[pos_c] == targets
    block_left = np.empty((5, n_cells), dtype=np.int64)
    block_count = np.empty((5, n_cells), dtype=np.int64)
    block_left[0] = cell_starts
    block_count[0] = cell_sizes
    block_left[1:] = np.where(hit, cell_starts[pos_c], 0)
    block_count[1:] = np.where(hit, cell_sizes[pos_c], 0)

    # Broadcast to nodes (sorted domain) and run one ragged gather.  The
    # flattened layout keeps the same-cell offset first, so its
    # candidates occupy a known prefix of the gathered arrays.
    left = block_left[:, cell_of].ravel()
    counts = block_count[:, cell_of].ravel()
    total = int(counts.sum())
    if total == 0:
        return empty, empty
    xs_sorted = pts[:, 0][order]
    ys_sorted = pts[:, 1][order]
    # The first n blocks are exactly the same-cell blocks (offset 0):
    # their candidates pair every cell-mate twice and include the node
    # itself, so each unordered pair is kept once with j > i.
    same_cell_total = int(counts[:n].sum())
    budget = (
        DISK_EDGE_CANDIDATE_BUDGET if max_candidates is None else max_candidates
    )
    if total <= budget:
        ii_sorted = np.repeat(np.tile(np.arange(n, dtype=np.int64), 5), counts)
        ends = np.cumsum(counts)
        j_sorted = np.arange(total) + np.repeat(left - (ends - counts), counts)
        dx = xs_sorted[ii_sorted] - xs_sorted[j_sorted]
        dy = ys_sorted[ii_sorted] - ys_sorted[j_sorted]
        valid = dx * dx + dy * dy <= radio_range * radio_range
        valid[:same_cell_total] &= (
            j_sorted[:same_cell_total] > ii_sorted[:same_cell_total]
        )
        return order[ii_sorted[valid]], order[j_sorted[valid]]

    # Chunked pass: walk the 5n candidate blocks in order, cutting a
    # chunk when its candidate total would exceed the budget (a single
    # oversized block still runs whole -- correctness never depends on
    # the cap).  Each chunk is the monolithic gather restricted to its
    # block range, so outputs concatenate to the identical edge list.
    r2 = radio_range * radio_range
    node_of_block = np.tile(np.arange(n, dtype=np.int64), 5)
    block_ends = np.cumsum(counts)
    n_blocks = len(counts)
    ii_parts: List[np.ndarray] = []
    jj_parts: List[np.ndarray] = []
    b0 = 0
    while b0 < n_blocks:
        start_pos = int(block_ends[b0] - counts[b0])
        b1 = int(np.searchsorted(block_ends, start_pos + budget, side="right"))
        b1 = max(b1, b0 + 1)
        c = counts[b0:b1]
        sub_total = int(c.sum())
        if sub_total:
            ii_s = np.repeat(node_of_block[b0:b1], c)
            e = np.cumsum(c)
            j_s = np.arange(sub_total) + np.repeat(left[b0:b1] - (e - c), c)
            dx = xs_sorted[ii_s] - xs_sorted[j_s]
            dy = ys_sorted[ii_s] - ys_sorted[j_s]
            valid = dx * dx + dy * dy <= r2
            sc = min(max(same_cell_total - start_pos, 0), sub_total)
            if sc > 0:
                valid[:sc] &= j_s[:sc] > ii_s[:sc]
            if valid.any():
                ii_parts.append(order[ii_s[valid]])
                jj_parts.append(order[j_s[valid]])
        b0 = b1
    if not ii_parts:
        return empty, empty
    return np.concatenate(ii_parts), np.concatenate(jj_parts)


def build_adjacency_reference(
    positions: Sequence[Vec], radio_range: float
) -> List[Set[int]]:
    """The original per-node spatial-hash loop, kept as the differential
    and performance baseline for :func:`build_adjacency`."""
    if radio_range <= 0:
        raise ValueError("radio range must be positive")
    n = len(positions)
    adj: List[Set[int]] = [set() for _ in range(n)]
    cell = radio_range
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for i, p in enumerate(positions):
        key = (int(math.floor(p[0] / cell)), int(math.floor(p[1] / cell)))
        buckets.setdefault(key, []).append(i)
    r2 = radio_range * radio_range
    for (kx, ky), members in buckets.items():
        neighbours_cells = [
            buckets.get((kx + dx, ky + dy), ())
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
        ]
        for i in members:
            xi, yi = positions[i]
            for other_cell in neighbours_cells:
                for j in other_cell:
                    if j <= i:
                        continue
                    xj, yj = positions[j]
                    dx = xi - xj
                    dy = yi - yj
                    if dx * dx + dy * dy <= r2:
                        adj[i].add(j)
                        adj[j].add(i)
    return adj


@dataclass(frozen=True)
class CsrAdjacency:
    """Compressed-sparse-row view of an adjacency, for batched traversal.

    ``indices[indptr[i]:indptr[i+1]]`` are node ``i``'s neighbours in
    ascending order.  The structure is immutable; liveness filtering is a
    per-query mask, so one CSR serves the whole failure-injection
    lifecycle of a network.
    """

    indptr: np.ndarray
    indices: np.ndarray

    @property
    def n_nodes(self) -> int:
        return len(self.indptr) - 1

    @classmethod
    def from_edges(
        cls, n: int, ii: np.ndarray, jj: np.ndarray
    ) -> "CsrAdjacency":
        """CSR of the symmetric graph given each undirected edge once.

        Rows come out in ascending neighbour order (the same order
        ``sorted(set)`` gives), so traversals are deterministic.
        """
        if len(ii) == 0:
            return cls(
                indptr=np.zeros(n + 1, dtype=np.int64),
                indices=np.empty(0, dtype=np.int64),
            )
        a = np.concatenate([ii, jj])
        b = np.concatenate([jj, ii])
        order = np.argsort(a * np.int64(n) + b, kind="stable")
        indices = b[order]
        counts = np.bincount(a, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=indices)

    @classmethod
    def from_sets(cls, adj: Sequence[Set[int]]) -> "CsrAdjacency":
        n = len(adj)
        counts = np.fromiter((len(s) for s in adj), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.fromiter(
            (j for s in adj for j in sorted(s)),
            dtype=np.int64,
            count=int(counts.sum()),
        )
        return cls(indptr=indptr, indices=indices)

    def to_sets(self) -> List[Set[int]]:
        """Materialise per-node neighbour sets (the legacy adjacency view)."""
        idx = self.indices.tolist()
        ptr = self.indptr.tolist()
        return [set(idx[ptr[v] : ptr[v + 1]]) for v in range(self.n_nodes)]

    def to_lists(self) -> List[List[int]]:
        """Per-node neighbour lists (ascending), cheaper than sets to build."""
        idx = self.indices.tolist()
        ptr = self.indptr.tolist()
        return [idx[ptr[v] : ptr[v + 1]] for v in range(self.n_nodes)]

    def neighbors(self, i: int) -> np.ndarray:
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def k_hop_neighbors(
        self, start: int, k: int, alive: Optional[Sequence[bool]] = None
    ) -> np.ndarray:
        """All nodes within ``k`` hops of ``start`` (excluding ``start``).

        Vectorized frontier BFS: each hop gathers every frontier node's
        CSR block in one ragged batch, masks dead/visited nodes, and
        dedupes with ``np.unique``.  Returns a sorted int64 array; agrees
        exactly with the set-based :func:`k_hop_neighbors`.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        n = self.n_nodes
        alive_arr = None if alive is None else np.asarray(alive, dtype=bool)
        seen = np.zeros(n, dtype=bool)
        seen[start] = True
        out = np.zeros(n, dtype=bool)
        frontier = np.array([start], dtype=np.int64)
        for _ in range(k):
            starts = self.indptr[frontier]
            counts = self.indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            base = np.repeat(starts, counts)
            within = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            cand = self.indices[base + within]
            if alive_arr is not None:
                cand = cand[alive_arr[cand]]
            cand = cand[~seen[cand]]
            if cand.size == 0:
                break
            frontier = np.unique(cand)
            seen[frontier] = True
            out[frontier] = True
        return np.nonzero(out)[0]


def average_degree(adj, alive: Sequence[bool] = None) -> float:
    """Mean neighbour count, optionally restricted to alive nodes.

    Accepts either the legacy per-node neighbour sets/lists or a
    :class:`CsrAdjacency` directly; the CSR path never materialises
    Python collections (the large-n hot path) and returns the exact
    same float (integer sum over integer count in both cases).
    """
    if isinstance(adj, CsrAdjacency):
        n = adj.n_nodes
        if n == 0:
            return 0.0
        if alive is None:
            return int(len(adj.indices)) / n
        alive_arr = np.asarray(alive, dtype=bool)
        live_deg = np.zeros(len(adj.indices) + 1, dtype=np.int64)
        np.cumsum(alive_arr[adj.indices], out=live_deg[1:])
        degrees = live_deg[adj.indptr[1:]] - live_deg[adj.indptr[:-1]]
        degrees = degrees[alive_arr]
        if degrees.size == 0:
            return 0.0
        return int(degrees.sum()) / int(degrees.size)
    if alive is None:
        degrees = [len(s) for s in adj]
    else:
        degrees = [
            sum(1 for j in s if alive[j]) for i, s in enumerate(adj) if alive[i]
        ]
    if not degrees:
        return 0.0
    return sum(degrees) / len(degrees)


def is_connected(adj, alive: Sequence[bool] = None) -> bool:
    """True when all (alive) nodes are mutually reachable.

    Accepts the legacy neighbour sets/lists or a :class:`CsrAdjacency`;
    the CSR path floods with an array-frontier BFS (one ragged gather
    per hop ring) instead of a per-node Python loop.
    """
    if isinstance(adj, CsrAdjacency):
        n = adj.n_nodes
        live_arr = (
            np.ones(n, dtype=bool) if alive is None else np.asarray(alive, dtype=bool)
        )
        live_idx = np.flatnonzero(live_arr)
        if live_idx.size == 0:
            return True  # vacuously connected
        seen = np.zeros(n, dtype=bool)
        start = int(live_idx[0])
        seen[start] = True
        frontier = np.array([start], dtype=np.int64)
        while frontier.size:
            starts = adj.indptr[frontier]
            counts = adj.indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            base = np.repeat(starts, counts)
            within = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            cand = adj.indices[base + within]
            cand = cand[live_arr[cand] & ~seen[cand]]
            if cand.size == 0:
                break
            frontier = np.unique(cand)
            seen[frontier] = True
        return int(seen.sum()) == int(live_idx.size)
    n = len(adj)
    live = [True] * n if alive is None else list(alive)
    start = next((i for i in range(n) if live[i]), None)
    if start is None:
        return True  # vacuously connected
    seen = {start}
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if live[v] and v not in seen:
                seen.add(v)
                queue.append(v)
    return len(seen) == sum(live)


def k_hop_neighbors(
    adj: Sequence[Set[int]], start: int, k: int, alive: Sequence[bool] = None
) -> Set[int]:
    """All nodes within ``k`` hops of ``start`` (excluding ``start``).

    Iso-Map's gradient estimation queries the k-hop neighbourhood
    (Section 3.3: "the query scope can be adjusted within k-hop
    neighbors"); k = 1 is the default.

    This is the set-based reference; the hot path goes through
    :meth:`CsrAdjacency.k_hop_neighbors`, which returns the same nodes.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    n = len(adj)
    live = [True] * n if alive is None else alive
    seen = {start}
    frontier = {start}
    out: Set[int] = set()
    for _ in range(k):
        nxt: Set[int] = set()
        for u in frontier:
            for v in adj[u]:
                if live[v] and v not in seen:
                    seen.add(v)
                    nxt.add(v)
        out |= nxt
        frontier = nxt
        if not frontier:
            break
    return out
