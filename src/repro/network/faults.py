"""Deterministic, seeded fault injection for the collection phase.

The paper assumes a perfect link layer and evaluates node failures only
as a static pre-epoch ratio (Figs. 11b/12b).  This module models the
regimes real deployments actually see -- and applies them *during* the
collection epoch, riding the TAG slot structure of
:mod:`repro.network.schedule` (one slot per tree level, deepest level
first):

- **mid-epoch node crashes and recoveries**, scheduled at a tree-level
  slot: a node that crashes at slot ``s`` stops relaying before the
  nodes of level ``s`` transmit, stranding any reports buffered in it;
- **burst link loss** via a two-state Gilbert-Elliott chain per directed
  link (alongside the existing i.i.d. Bernoulli model of
  :mod:`repro.network.links`);
- **payload corruption**: a delivered frame's bits are flipped, which a
  CRC-checking receiver detects (and the sender retries) and a naive
  receiver accepts as a poisoned report;
- **packet duplication**: a delivered frame arrives twice (the classic
  lost-ACK retransmission), which sequence numbers can suppress.

Everything is driven by named random streams derived from the plan's
single seed, with independent streams per concern (schedule, per-link
loss/corruption/duplication, payload damage), so a plan replays
byte-identically regardless of which protocol runs under it -- the
property that makes Iso-Map-vs-baseline comparisons under faults
apples-to-apples.  The per-link streams are *counter-based*
(:mod:`repro.network.rngstream`): draw ``i`` of a stream is a pure
function of the stream key and ``i``, so the batched transport can
evaluate a whole tree level's draws as arrays and land on exactly the
variates the scalar walk reads one by one.  The engine never mutates
the :class:`SensorNetwork`; crash state is kept internally so one
deployment can be reused across protocol runs and seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.network.links import LossyLinkModel
from repro.network.network import SensorNetwork
from repro.network.rngstream import derive_key, uniform_at, uniforms_at_many


@dataclass(frozen=True)
class BernoulliLink:
    """Memoryless per-attempt loss: each attempt delivers with fixed odds.

    The stateful-interface twin of :class:`LossyLinkModel` (which bundles
    the same distribution with an ARQ budget); the transport owns the
    retry budget now, so the link model only answers "did this attempt
    get through".
    """

    delivery_probability: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.delivery_probability <= 1.0:
            raise ValueError("delivery probability must be in [0, 1]")

    def initial_state(self, rng: random.Random) -> None:
        return None

    def step(self, state: None, rng: random.Random) -> None:
        return None

    def delivers(self, state: None, rng: random.Random) -> bool:
        return rng.random() < self.delivery_probability

    def average_delivery(self) -> float:
        """Long-run per-attempt delivery probability (closed form)."""
        return self.delivery_probability


@dataclass(frozen=True)
class GilbertElliottLink:
    """Two-state burst-loss chain: a link is *good* or *bad* per attempt.

    Attributes:
        p_enter_bad: good -> bad transition probability per attempt.
        p_exit_bad: bad -> good transition probability per attempt
            (mean burst length = 1 / p_exit_bad attempts).
        deliver_good: delivery probability while good.
        deliver_bad: delivery probability while bad.
    """

    p_enter_bad: float = 0.15
    p_exit_bad: float = 0.4
    deliver_good: float = 1.0
    deliver_bad: float = 0.7

    def __post_init__(self) -> None:
        for name in ("p_enter_bad", "p_exit_bad", "deliver_good", "deliver_bad"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.p_enter_bad + self.p_exit_bad <= 0.0:
            raise ValueError("the chain must be able to move between states")

    def steady_state_bad(self) -> float:
        """Stationary probability of the bad state."""
        return self.p_enter_bad / (self.p_enter_bad + self.p_exit_bad)

    def initial_state(self, rng: random.Random) -> bool:
        """Sample the stationary distribution (True = bad)."""
        return rng.random() < self.steady_state_bad()

    def step(self, bad: bool, rng: random.Random) -> bool:
        if bad:
            return not (rng.random() < self.p_exit_bad)
        return rng.random() < self.p_enter_bad

    def delivers(self, bad: bool, rng: random.Random) -> bool:
        p = self.deliver_bad if bad else self.deliver_good
        return rng.random() < p

    def average_delivery(self) -> float:
        """Long-run per-attempt delivery probability (closed form)."""
        sb = self.steady_state_bad()
        return (1.0 - sb) * self.deliver_good + sb * self.deliver_bad


LinkFault = Union[BernoulliLink, GilbertElliottLink]

#: Slot-scheduled node event kinds.
CRASH = "crash"
RECOVER = "recover"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled node event.

    Attributes:
        slot: the tree-level slot at which the event fires.  Collection
            proceeds deepest level first, so slot ``s`` fires *before*
            the nodes of level ``s`` transmit; larger slots are earlier
            in the epoch.
        node: the affected node id (never the sink).
        kind: :data:`CRASH` or :data:`RECOVER`.
    """

    slot: int
    node: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in (CRASH, RECOVER):
            raise ValueError(f"unknown fault event kind {self.kind!r}")
        if self.slot < 0:
            raise ValueError("event slot must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seeded description of one epoch's faults.

    The plan stores *specifications* (ratios, link model, probabilities);
    the :class:`FaultEngine` instantiates concrete events deterministically
    from ``(seed, network)`` at run start, so the same plan object can be
    applied to every protocol on the same deployment and each sees the
    identical fault sequence.

    Attributes:
        seed: master seed; every stochastic stream derives from it.
        crash_ratio: fraction of routed non-sink nodes that crash
            mid-epoch, at a uniform-random tree-level slot.
        recover_ratio: fraction of the mid-epoch crashers that recover at
            a later (shallower) slot of the same epoch.
        link: per-attempt link-loss model (None = lossless).
        corruption: probability a delivered frame arrives bit-damaged.
        duplication: probability a delivered frame arrives twice.
        events: explicit extra events (tests and hand-written scenarios).
    """

    seed: int = 0
    crash_ratio: float = 0.0
    recover_ratio: float = 0.0
    link: Optional[LinkFault] = None
    corruption: float = 0.0
    duplication: float = 0.0
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in ("crash_ratio", "recover_ratio", "corruption", "duplication"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.crash_ratio == 0.0
            and self.link is None
            and self.corruption == 0.0
            and self.duplication == 0.0
            and not self.events
        )

    @staticmethod
    def none() -> "FaultPlan":
        """The zero-fault plan (perfect link layer, no events)."""
        return FaultPlan()

    @staticmethod
    def at_intensity(intensity: float, seed: int = 0) -> "FaultPlan":
        """The fig_faults sweep's one-knob family of plans.

        ``intensity`` in [0, 1] scales every fault source together; 1.0
        is the "moderate" operating point: 10% mid-epoch crashes (30% of
        which recover), Gilbert-Elliott burst loss dropping 30% of
        attempts in the bad state, 1% frame corruption and 1%
        duplication.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        if intensity == 0.0:
            return FaultPlan(seed=seed)
        return FaultPlan(
            seed=seed,
            crash_ratio=0.10 * intensity,
            recover_ratio=0.3,
            link=GilbertElliottLink(
                p_enter_bad=0.15,
                p_exit_bad=0.4,
                deliver_good=1.0,
                deliver_bad=1.0 - 0.3 * intensity,
            ),
            corruption=0.01 * intensity,
            duplication=0.01 * intensity,
        )

    @staticmethod
    def moderate(seed: int = 0) -> "FaultPlan":
        """The all-sources-on moderate plan (intensity 1.0)."""
        return FaultPlan.at_intensity(1.0, seed=seed)


#: Stream tags of the four counter-based streams each directed edge owns.
_TAG_STATE = 1  # Gilbert-Elliott chain steps
_TAG_DELIVER = 2  # per-attempt delivery draws
_TAG_CORRUPT = 3  # per-attempt corruption draws
_TAG_DUP = 4  # per-frame duplication draws


class _EdgeStreams:
    """Per-directed-edge stream keys and cursors.

    ``frame`` is the next frame index on the edge; the Gilbert-Elliott
    checkpoint ``(ge_state, ge_t)`` is the chain state after ``ge_t``
    steps (``ge_t < 0`` = not yet initialised).  Because the chain state
    at step ``t`` is a pure function of the state stream's uniforms
    ``0..t``, the checkpoint can be advanced scalar-ly or in one batched
    scan and both paths land on identical states.
    """

    __slots__ = ("frame", "ge_state", "ge_t", "k_state", "k_deliver", "k_corrupt", "k_dup")

    def __init__(self, seed: int, u: int, v: int):
        self.frame = 0
        self.ge_state = False
        self.ge_t = -1
        self.k_state = derive_key(seed, _TAG_STATE, u, v)
        self.k_deliver = derive_key(seed, _TAG_DELIVER, u, v)
        self.k_corrupt = derive_key(seed, _TAG_CORRUPT, u, v)
        self.k_dup = derive_key(seed, _TAG_DUP, u, v)


class FaultEngine:
    """Applies a :class:`FaultPlan` to one collection epoch.

    Instantiated per protocol run.  Crash/recovery state is internal --
    the engine never mutates the network's nodes -- and all randomness
    flows from named streams derived from the plan seed:

    - ``schedule``: which nodes crash/recover and at which slots;
    - four counter-based streams per directed link (chain state,
      delivery, corruption, duplication), addressed by frame and attempt
      index so outcomes are independent of evaluation order;
    - ``corrupt``: the Mersenne damage stream feeding
      :meth:`corrupt_payload` (consumed in walk order by both paths).

    Each frame on an edge owns a fixed draw budget of
    :attr:`attempts_per_frame` slots (the transport's ARQ attempt
    ceiling): frame ``f``'s attempt ``k`` reads delivery/corruption
    counter ``f * A + (k - 1)`` and chain step ``f * A + k``, and the
    burst chain advances all ``A`` steps per frame whether or not the
    later attempts happen (the channel evolves in time, not per packet),
    which is what makes every draw's address data-independent.
    """

    def __init__(self, plan: FaultPlan, network: SensorNetwork):
        self.plan = plan
        self.network = network
        self._down: set = set()
        self._crashed: List[int] = []
        self._recovered: List[int] = []
        self._corrupt_rng = random.Random(f"{plan.seed}|corrupt")
        self._dup_rng = random.Random(f"{plan.seed}|dup")
        #: Attempt slots reserved per frame; the transport sets this to
        #: its ARQ ceiling before any frame draw happens.
        self.attempts_per_frame = 1
        self._edges: Dict[Tuple[int, int], _EdgeStreams] = {}
        # Liveness snapshot for the batched paths.  Node liveness only
        # changes between epochs (fail_random / revive_all), never while
        # an engine is walking one, so the snapshot stays truthful.
        self._net_alive = np.fromiter(
            (nd.alive for nd in network.nodes), dtype=bool, count=network.n_nodes
        )
        self._down_mask = np.zeros(network.n_nodes, dtype=bool)
        self._pending = self._build_schedule()
        self._cursor = 0

    # ------------------------------------------------------------------
    # Schedule
    # ------------------------------------------------------------------

    def _build_schedule(self) -> List[FaultEvent]:
        """Instantiate the plan's concrete events for this network.

        The result is cached on the network object, keyed by the plan
        fields the schedule depends on plus the network's routing-tree
        version (liveness changes always rebuild the tree), so a sweep
        that runs many protocols under the same plan on one deployment
        builds the schedule once.
        """
        plan = self.plan
        cache = self.network.__dict__.setdefault("_fault_schedule_cache", {})
        key = (
            plan.seed,
            plan.crash_ratio,
            plan.recover_ratio,
            plan.events,
            getattr(self.network, "_tree_version", 0),
        )
        cached = cache.get(key)
        if cached is not None:
            return list(cached)
        events = self._build_schedule_uncached()
        cache[key] = tuple(events)
        return events

    def _build_schedule_uncached(self) -> List[FaultEvent]:
        rng = random.Random(f"{self.plan.seed}|schedule")
        tree = self.network.tree
        depth = max(1, tree.depth)
        candidates = [
            i
            for i in range(self.network.n_nodes)
            if i != self.network.sink_index
            and self.network.nodes[i].alive
            and tree.level[i] is not None
        ]
        k = min(
            int(self.plan.crash_ratio * len(candidates) + 0.5), len(candidates)
        )
        crashers = rng.sample(candidates, k) if k else []
        events: List[FaultEvent] = []
        crash_slot: Dict[int, int] = {}
        for i in crashers:
            slot = rng.randint(1, depth)
            crash_slot[i] = slot
            events.append(FaultEvent(slot, i, CRASH))
        n_recover = int(self.plan.recover_ratio * len(crashers) + 0.5)
        for i in crashers[:n_recover]:
            if crash_slot[i] > 1:
                events.append(FaultEvent(rng.randint(1, crash_slot[i] - 1), i, RECOVER))
        for e in self.plan.events:
            if e.node == self.network.sink_index:
                raise ValueError("the sink cannot be a fault-event target")
            events.append(e)
        # Time order: larger slots fire first; stable within a slot.
        return sorted(events, key=lambda e: -e.slot)

    def advance_to_slot(self, level: int) -> None:
        """Fire every not-yet-fired event with ``slot >= level``.

        Called by the transport when collection starts processing the
        nodes of ``level``; events scheduled at that slot (or missed
        deeper slots with no transmitting nodes) take effect first.
        """
        while self._cursor < len(self._pending):
            e = self._pending[self._cursor]
            if e.slot < level:
                break
            if e.kind == CRASH:
                if e.node not in self._down:
                    self._down.add(e.node)
                    self._down_mask[e.node] = True
                    self._crashed.append(e.node)
            else:
                if e.node in self._down:
                    self._down.discard(e.node)
                    self._down_mask[e.node] = False
                    self._recovered.append(e.node)
            self._cursor += 1

    def finish_epoch(self) -> None:
        """Fire any remaining events (slots below the last level walked)."""
        self.advance_to_slot(0)

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------

    def alive(self, node: int) -> bool:
        """Engine-view liveness: network liveness minus mid-epoch crashes."""
        return self.network.nodes[node].alive and node not in self._down

    def alive_array(self) -> np.ndarray:
        """:meth:`alive` for every node at once (batched-walk view)."""
        return self._net_alive & ~self._down_mask

    @property
    def crashed_nodes(self) -> Tuple[int, ...]:
        return tuple(self._crashed)

    @property
    def recovered_nodes(self) -> Tuple[int, ...]:
        return tuple(self._recovered)

    # ------------------------------------------------------------------
    # Per-frame draws
    # ------------------------------------------------------------------

    def _edge(self, sender: int, receiver: int) -> _EdgeStreams:
        key = (sender, receiver)
        es = self._edges.get(key)
        if es is None:
            es = _EdgeStreams(self.plan.seed, sender, receiver)
            self._edges[key] = es
        return es

    def next_frame(self, sender: int, receiver: int) -> int:
        """Allocate the next frame index on the directed edge."""
        es = self._edge(sender, receiver)
        f = es.frame
        es.frame = f + 1
        return f

    def _ge_state_at(self, es: _EdgeStreams, t: int, model: GilbertElliottLink) -> bool:
        """Chain state (True = bad) after ``t`` steps, advancing the
        edge's checkpoint.  Step 0 is the stationary draw; step ``i``
        reads state-stream counter ``i``.  Callers only move forward in
        time (frames and attempts are monotone per edge)."""
        if es.ge_t < 0:
            es.ge_state = uniform_at(es.k_state, 0) < model.steady_state_bad()
            es.ge_t = 0
        state = es.ge_state
        tt = es.ge_t
        while tt < t:
            tt += 1
            u = uniform_at(es.k_state, tt)
            if state:
                state = not (u < model.p_exit_bad)
            else:
                state = u < model.p_enter_bad
        es.ge_state = state
        es.ge_t = tt
        return state

    def link_ok(self, sender: int, receiver: int, frame: int, attempt: int) -> bool:
        """Did attempt ``attempt`` (1-based) of ``frame`` survive the air?"""
        model = self.plan.link
        if model is None:
            return True
        es = self._edge(sender, receiver)
        a = self.attempts_per_frame
        t_del = frame * a + (attempt - 1)
        if isinstance(model, GilbertElliottLink):
            bad = self._ge_state_at(es, frame * a + attempt, model)
            p = model.deliver_bad if bad else model.deliver_good
        else:
            p = model.delivery_probability
        return uniform_at(es.k_deliver, t_del) < p

    def corrupt_at(self, sender: int, receiver: int, frame: int, attempt: int) -> bool:
        """Does this (frame, attempt) arrive bit-damaged?"""
        if self.plan.corruption <= 0.0:
            return False
        es = self._edge(sender, receiver)
        t = frame * self.attempts_per_frame + (attempt - 1)
        return uniform_at(es.k_corrupt, t) < self.plan.corruption

    def dup_at(self, sender: int, receiver: int, frame: int) -> bool:
        """Does this delivered frame arrive twice?"""
        if self.plan.duplication <= 0.0:
            return False
        es = self._edge(sender, receiver)
        return uniform_at(es.k_dup, frame) < self.plan.duplication

    def link_attempt(self, sender: int, receiver: int) -> bool:
        """One stand-alone transmission attempt on the directed link
        (True = on air OK).  Each call burns one frame of the edge's
        streams; kept for direct link-model exercises -- the transport
        addresses attempts explicitly via :meth:`link_ok`."""
        if self.plan.link is None:
            return True
        return self.link_ok(sender, receiver, self.next_frame(sender, receiver), 1)

    # -- batched draws --------------------------------------------------

    def frame_draws_batch(
        self, edges: Sequence[Tuple[int, int]], counts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All link/corruption/duplication draws for a batch of frames.

        Args:
            edges: directed ``(sender, receiver)`` pairs, one per edge.
            counts: frames per edge (``counts[i] >= 1``).

        Returns ``(air_ok, corrupt, dup)`` where ``air_ok`` and
        ``corrupt`` are ``(F, A)`` booleans (``F = counts.sum()``,
        ``A = attempts_per_frame``) and ``dup`` is ``(F,)``; frames are
        laid out edge-major in the given edge order, ascending frame
        index within an edge.  Advances every edge's frame cursor and
        burst-chain checkpoint exactly as ``counts[i]`` scalar frames
        would -- the returned booleans are bit-identical to the scalar
        :meth:`link_ok` / :meth:`corrupt_at` / :meth:`dup_at` answers.
        """
        streams = [self._edge(u, v) for (u, v) in edges]
        return _frame_draws(self.plan, self.attempts_per_frame, streams, counts)

    def _ge_states_batch(
        self,
        streams: List[_EdgeStreams],
        counts: np.ndarray,
        f0: np.ndarray,
        frames: np.ndarray,
        edge_of: np.ndarray,
        model: GilbertElliottLink,
    ) -> np.ndarray:
        """See :func:`_ge_states_scan` (kept as a method for callers)."""
        return _ge_states_scan(
            self.attempts_per_frame, streams, counts, f0, frames, edge_of, model
        )

    def corrupts(self) -> bool:
        """Does the next delivered frame arrive bit-damaged?"""
        return (
            self.plan.corruption > 0.0
            and self._corrupt_rng.random() < self.plan.corruption
        )

    def corrupt_payload(self, payload: bytes) -> bytes:
        """Flip 1-3 distinct random bits of ``payload`` (the injected
        damage; distinct so the frame is always genuinely altered)."""
        if not payload:
            return payload
        damaged = bytearray(payload)
        flips = 1 + self._corrupt_rng.randrange(3)
        for bit in self._corrupt_rng.sample(range(len(damaged) * 8), flips):
            damaged[bit // 8] ^= 1 << (bit % 8)
        return bytes(damaged)

    def duplicates(self) -> bool:
        """Does the next delivered frame arrive twice?"""
        return (
            self.plan.duplication > 0.0
            and self._dup_rng.random() < self.plan.duplication
        )


def _frame_draws(
    plan: FaultPlan,
    attempts_per_frame: int,
    streams: List[_EdgeStreams],
    counts: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The :meth:`FaultEngine.frame_draws_batch` kernel, engine-free.

    Operates on explicit edge streams so detached per-tile resolution
    (:func:`frame_draws_detached`) shares the exact code path -- and
    therefore the exact IEEE-754 arithmetic -- of the engine's batch.
    Advances each stream's frame cursor and burst-chain checkpoint.
    """
    a = attempts_per_frame
    model = plan.link
    counts = np.asarray(counts, dtype=np.int64)
    n_edges = len(streams)
    total = int(counts.sum())
    f0 = np.fromiter((es.frame for es in streams), np.int64, count=n_edges)

    edge_of = np.repeat(np.arange(n_edges), counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    frames = f0[edge_of] + within
    t_del = frames[:, None] * a + np.arange(a)[None, :]

    k_del = np.fromiter(
        (es.k_deliver for es in streams), np.uint64, count=n_edges
    )
    u_del = uniforms_at_many(k_del[edge_of][:, None], t_del)
    if model is None:
        air_ok = np.ones((total, a), dtype=bool)
    elif isinstance(model, GilbertElliottLink):
        bad = _ge_states_scan(a, streams, counts, f0, frames, edge_of, model)
        air_ok = u_del < np.where(bad, model.deliver_bad, model.deliver_good)
    else:
        air_ok = u_del < model.delivery_probability

    if plan.corruption > 0.0:
        k_cor = np.fromiter(
            (es.k_corrupt for es in streams), np.uint64, count=n_edges
        )
        corrupt = (
            uniforms_at_many(k_cor[edge_of][:, None], t_del) < plan.corruption
        )
    else:
        corrupt = np.zeros((total, a), dtype=bool)

    if plan.duplication > 0.0:
        k_dup = np.fromiter(
            (es.k_dup for es in streams), np.uint64, count=n_edges
        )
        dup = uniforms_at_many(k_dup[edge_of], frames) < plan.duplication
    else:
        dup = np.zeros(total, dtype=bool)

    for i, es in enumerate(streams):
        es.frame = int(f0[i] + counts[i])
    return air_ok, corrupt, dup


def _ge_states_scan(
    attempts_per_frame: int,
    streams: List[_EdgeStreams],
    counts: np.ndarray,
    f0: np.ndarray,
    frames: np.ndarray,
    edge_of: np.ndarray,
    model: GilbertElliottLink,
) -> np.ndarray:
    """Burst-chain states for every (frame, attempt) of a batch.

    The two-state chain under an i.i.d. uniform stream is an
    associative scan: classify each step as *swap* (flip whatever
    the state was), *const* (force good/bad regardless) or
    *identity*, then the state at any step is the last const value
    before it, flipped by the parity of the swaps since.  One
    ``maximum.accumulate`` + ``cumsum`` resolves all edges at once;
    a virtual const slot carrying each edge's checkpoint state heads
    its segment so segments can never bleed into each other.
    """
    n_edges = len(streams)
    a = attempts_per_frame
    # Initialise checkpoints (stationary draw at counter 0).
    sb = model.steady_state_bad()
    for es in streams:
        if es.ge_t < 0:
            es.ge_state = uniform_at(es.k_state, 0) < sb
            es.ge_t = 0
    t_cp = np.fromiter((es.ge_t for es in streams), np.int64, count=n_edges)
    s_cp = np.fromiter((es.ge_state for es in streams), bool, count=n_edges)
    t_end = (f0 + counts) * a
    n_steps = t_end - t_cp  # >= 1: counts >= 1 and t_cp <= f0 * a
    seg_len = n_steps + 1  # one virtual checkpoint slot per edge
    seg_start = np.concatenate(([0], np.cumsum(seg_len)[:-1]))
    n_slots = int(seg_len.sum())

    slot_edge = np.repeat(np.arange(n_edges), seg_len)
    slot_pos = np.arange(n_slots) - seg_start[slot_edge]
    slot_t = t_cp[slot_edge] + slot_pos  # virtual slot sits at t_cp
    is_virtual = slot_pos == 0

    k_state = np.fromiter(
        (es.k_state for es in streams), np.uint64, count=n_edges
    )
    u = uniforms_at_many(k_state[slot_edge], slot_t)
    enter = u < model.p_enter_bad
    leave = u < model.p_exit_bad
    is_swap = enter & leave & ~is_virtual
    is_const = (enter ^ leave) | is_virtual
    # Const value: forced-bad steps have enter & ~leave (True); the
    # virtual slots carry the checkpoint state.
    const_val = np.where(is_virtual, s_cp[slot_edge], enter & ~leave)

    idx = np.arange(n_slots)
    m = np.maximum.accumulate(np.where(is_const, idx, -1))
    c = np.cumsum(is_swap)
    state = const_val[m] ^ (((c - c[m]) & 1) == 1)

    # Checkpoint: the state at each segment's final slot (t_end).
    seg_last = seg_start + seg_len - 1
    last_states = state[seg_last]
    for i, es in enumerate(streams):
        es.ge_state = bool(last_states[i])
        es.ge_t = int(t_end[i])

    # Gather the (frame, attempt) states: attempt k of frame f reads
    # step f*a + k, at slot offset (t - t_cp) within the segment.
    t_att = frames[:, None] * a + np.arange(1, a + 1)[None, :]
    pos = seg_start[edge_of][:, None] + (t_att - t_cp[edge_of][:, None])
    return state[pos]


def frame_draws_detached(
    plan: FaultPlan,
    attempts_per_frame: int,
    edges: Sequence[Tuple[int, int]],
    counts: Sequence[int],
    frame0: Sequence[int],
    ge_t: Sequence[int],
    ge_state: Sequence[bool],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Tuple[int, int, bool]]]:
    """:meth:`FaultEngine.frame_draws_batch` without an engine.

    Rebuilds each edge's streams from shipped cursors (frame index plus
    burst-chain checkpoint) and resolves the draws with the shared
    kernel -- this is how a tile worker replays its slice of the epoch
    in another process and lands on the exact variates the in-process
    engine would.  Stream keys are pure functions of ``(plan.seed,
    sender, receiver)``, so only the cursors need to travel.

    Returns ``(air_ok, corrupt, dup, cursors)`` where ``cursors`` is the
    advanced ``(frame, ge_t, ge_state)`` per edge for the caller to
    write back into the authoritative engine.
    """
    streams: List[_EdgeStreams] = []
    for k, (u, v) in enumerate(edges):
        es = _EdgeStreams(plan.seed, int(u), int(v))
        es.frame = int(frame0[k])
        es.ge_t = int(ge_t[k])
        es.ge_state = bool(ge_state[k])
        streams.append(es)
    air_ok, corrupt, dup = _frame_draws(plan, attempts_per_frame, streams, counts)
    cursors = [(es.frame, es.ge_t, es.ge_state) for es in streams]
    return air_ok, corrupt, dup, cursors


def bernoulli_from_lossy(model: LossyLinkModel) -> BernoulliLink:
    """Adapt the legacy ARQ-bundled model to the stateful link interface."""
    return BernoulliLink(delivery_probability=model.delivery_probability)
