"""Deterministic, seeded fault injection for the collection phase.

The paper assumes a perfect link layer and evaluates node failures only
as a static pre-epoch ratio (Figs. 11b/12b).  This module models the
regimes real deployments actually see -- and applies them *during* the
collection epoch, riding the TAG slot structure of
:mod:`repro.network.schedule` (one slot per tree level, deepest level
first):

- **mid-epoch node crashes and recoveries**, scheduled at a tree-level
  slot: a node that crashes at slot ``s`` stops relaying before the
  nodes of level ``s`` transmit, stranding any reports buffered in it;
- **burst link loss** via a two-state Gilbert-Elliott chain per directed
  link (alongside the existing i.i.d. Bernoulli model of
  :mod:`repro.network.links`);
- **payload corruption**: a delivered frame's bits are flipped, which a
  CRC-checking receiver detects (and the sender retries) and a naive
  receiver accepts as a poisoned report;
- **packet duplication**: a delivered frame arrives twice (the classic
  lost-ACK retransmission), which sequence numbers can suppress.

Everything is driven by explicit :class:`random.Random` instances
derived from the plan's single seed, with independent streams per
concern (schedule, per-link loss, corruption, duplication), so a plan
replays byte-identically regardless of which protocol runs under it --
the property that makes Iso-Map-vs-baseline comparisons under faults
apples-to-apples.  The engine never mutates the :class:`SensorNetwork`;
crash state is kept internally so one deployment can be reused across
protocol runs and seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.network.links import LossyLinkModel
from repro.network.network import SensorNetwork


@dataclass(frozen=True)
class BernoulliLink:
    """Memoryless per-attempt loss: each attempt delivers with fixed odds.

    The stateful-interface twin of :class:`LossyLinkModel` (which bundles
    the same distribution with an ARQ budget); the transport owns the
    retry budget now, so the link model only answers "did this attempt
    get through".
    """

    delivery_probability: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.delivery_probability <= 1.0:
            raise ValueError("delivery probability must be in [0, 1]")

    def initial_state(self, rng: random.Random) -> None:
        return None

    def step(self, state: None, rng: random.Random) -> None:
        return None

    def delivers(self, state: None, rng: random.Random) -> bool:
        return rng.random() < self.delivery_probability

    def average_delivery(self) -> float:
        """Long-run per-attempt delivery probability (closed form)."""
        return self.delivery_probability


@dataclass(frozen=True)
class GilbertElliottLink:
    """Two-state burst-loss chain: a link is *good* or *bad* per attempt.

    Attributes:
        p_enter_bad: good -> bad transition probability per attempt.
        p_exit_bad: bad -> good transition probability per attempt
            (mean burst length = 1 / p_exit_bad attempts).
        deliver_good: delivery probability while good.
        deliver_bad: delivery probability while bad.
    """

    p_enter_bad: float = 0.15
    p_exit_bad: float = 0.4
    deliver_good: float = 1.0
    deliver_bad: float = 0.7

    def __post_init__(self) -> None:
        for name in ("p_enter_bad", "p_exit_bad", "deliver_good", "deliver_bad"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.p_enter_bad + self.p_exit_bad <= 0.0:
            raise ValueError("the chain must be able to move between states")

    def steady_state_bad(self) -> float:
        """Stationary probability of the bad state."""
        return self.p_enter_bad / (self.p_enter_bad + self.p_exit_bad)

    def initial_state(self, rng: random.Random) -> bool:
        """Sample the stationary distribution (True = bad)."""
        return rng.random() < self.steady_state_bad()

    def step(self, bad: bool, rng: random.Random) -> bool:
        if bad:
            return not (rng.random() < self.p_exit_bad)
        return rng.random() < self.p_enter_bad

    def delivers(self, bad: bool, rng: random.Random) -> bool:
        p = self.deliver_bad if bad else self.deliver_good
        return rng.random() < p

    def average_delivery(self) -> float:
        """Long-run per-attempt delivery probability (closed form)."""
        sb = self.steady_state_bad()
        return (1.0 - sb) * self.deliver_good + sb * self.deliver_bad


LinkFault = Union[BernoulliLink, GilbertElliottLink]

#: Slot-scheduled node event kinds.
CRASH = "crash"
RECOVER = "recover"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled node event.

    Attributes:
        slot: the tree-level slot at which the event fires.  Collection
            proceeds deepest level first, so slot ``s`` fires *before*
            the nodes of level ``s`` transmit; larger slots are earlier
            in the epoch.
        node: the affected node id (never the sink).
        kind: :data:`CRASH` or :data:`RECOVER`.
    """

    slot: int
    node: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in (CRASH, RECOVER):
            raise ValueError(f"unknown fault event kind {self.kind!r}")
        if self.slot < 0:
            raise ValueError("event slot must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seeded description of one epoch's faults.

    The plan stores *specifications* (ratios, link model, probabilities);
    the :class:`FaultEngine` instantiates concrete events deterministically
    from ``(seed, network)`` at run start, so the same plan object can be
    applied to every protocol on the same deployment and each sees the
    identical fault sequence.

    Attributes:
        seed: master seed; every stochastic stream derives from it.
        crash_ratio: fraction of routed non-sink nodes that crash
            mid-epoch, at a uniform-random tree-level slot.
        recover_ratio: fraction of the mid-epoch crashers that recover at
            a later (shallower) slot of the same epoch.
        link: per-attempt link-loss model (None = lossless).
        corruption: probability a delivered frame arrives bit-damaged.
        duplication: probability a delivered frame arrives twice.
        events: explicit extra events (tests and hand-written scenarios).
    """

    seed: int = 0
    crash_ratio: float = 0.0
    recover_ratio: float = 0.0
    link: Optional[LinkFault] = None
    corruption: float = 0.0
    duplication: float = 0.0
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in ("crash_ratio", "recover_ratio", "corruption", "duplication"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.crash_ratio == 0.0
            and self.link is None
            and self.corruption == 0.0
            and self.duplication == 0.0
            and not self.events
        )

    @staticmethod
    def none() -> "FaultPlan":
        """The zero-fault plan (perfect link layer, no events)."""
        return FaultPlan()

    @staticmethod
    def at_intensity(intensity: float, seed: int = 0) -> "FaultPlan":
        """The fig_faults sweep's one-knob family of plans.

        ``intensity`` in [0, 1] scales every fault source together; 1.0
        is the "moderate" operating point: 10% mid-epoch crashes (30% of
        which recover), Gilbert-Elliott burst loss dropping 30% of
        attempts in the bad state, 1% frame corruption and 1%
        duplication.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        if intensity == 0.0:
            return FaultPlan(seed=seed)
        return FaultPlan(
            seed=seed,
            crash_ratio=0.10 * intensity,
            recover_ratio=0.3,
            link=GilbertElliottLink(
                p_enter_bad=0.15,
                p_exit_bad=0.4,
                deliver_good=1.0,
                deliver_bad=1.0 - 0.3 * intensity,
            ),
            corruption=0.01 * intensity,
            duplication=0.01 * intensity,
        )

    @staticmethod
    def moderate(seed: int = 0) -> "FaultPlan":
        """The all-sources-on moderate plan (intensity 1.0)."""
        return FaultPlan.at_intensity(1.0, seed=seed)


class FaultEngine:
    """Applies a :class:`FaultPlan` to one collection epoch.

    Instantiated per protocol run.  Crash/recovery state is internal --
    the engine never mutates the network's nodes -- and all randomness
    flows from named streams derived from the plan seed:

    - ``schedule``: which nodes crash/recover and at which slots;
    - ``link|u|v``: one stream per directed link for loss sampling (so
      the loss a link sees is independent of how many frames other links
      carried);
    - ``corrupt`` / ``dup``: frame corruption and duplication draws, in
      walk order.
    """

    def __init__(self, plan: FaultPlan, network: SensorNetwork):
        self.plan = plan
        self.network = network
        self._down: set = set()
        self._crashed: List[int] = []
        self._recovered: List[int] = []
        self._corrupt_rng = random.Random(f"{plan.seed}|corrupt")
        self._dup_rng = random.Random(f"{plan.seed}|dup")
        self._link_rngs: Dict[Tuple[int, int], random.Random] = {}
        self._link_state: Dict[Tuple[int, int], object] = {}
        self._pending = self._build_schedule()
        self._cursor = 0

    # ------------------------------------------------------------------
    # Schedule
    # ------------------------------------------------------------------

    def _build_schedule(self) -> List[FaultEvent]:
        """Instantiate the plan's concrete events for this network."""
        rng = random.Random(f"{self.plan.seed}|schedule")
        tree = self.network.tree
        depth = max(1, tree.depth)
        candidates = [
            i
            for i in range(self.network.n_nodes)
            if i != self.network.sink_index
            and self.network.nodes[i].alive
            and tree.level[i] is not None
        ]
        k = min(
            int(self.plan.crash_ratio * len(candidates) + 0.5), len(candidates)
        )
        crashers = rng.sample(candidates, k) if k else []
        events: List[FaultEvent] = []
        crash_slot: Dict[int, int] = {}
        for i in crashers:
            slot = rng.randint(1, depth)
            crash_slot[i] = slot
            events.append(FaultEvent(slot, i, CRASH))
        n_recover = int(self.plan.recover_ratio * len(crashers) + 0.5)
        for i in crashers[:n_recover]:
            if crash_slot[i] > 1:
                events.append(FaultEvent(rng.randint(1, crash_slot[i] - 1), i, RECOVER))
        for e in self.plan.events:
            if e.node == self.network.sink_index:
                raise ValueError("the sink cannot be a fault-event target")
            events.append(e)
        # Time order: larger slots fire first; stable within a slot.
        return sorted(events, key=lambda e: -e.slot)

    def advance_to_slot(self, level: int) -> None:
        """Fire every not-yet-fired event with ``slot >= level``.

        Called by the transport when collection starts processing the
        nodes of ``level``; events scheduled at that slot (or missed
        deeper slots with no transmitting nodes) take effect first.
        """
        while self._cursor < len(self._pending):
            e = self._pending[self._cursor]
            if e.slot < level:
                break
            if e.kind == CRASH:
                if e.node not in self._down:
                    self._down.add(e.node)
                    self._crashed.append(e.node)
            else:
                if e.node in self._down:
                    self._down.discard(e.node)
                    self._recovered.append(e.node)
            self._cursor += 1

    def finish_epoch(self) -> None:
        """Fire any remaining events (slots below the last level walked)."""
        self.advance_to_slot(0)

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------

    def alive(self, node: int) -> bool:
        """Engine-view liveness: network liveness minus mid-epoch crashes."""
        return self.network.nodes[node].alive and node not in self._down

    @property
    def crashed_nodes(self) -> Tuple[int, ...]:
        return tuple(self._crashed)

    @property
    def recovered_nodes(self) -> Tuple[int, ...]:
        return tuple(self._recovered)

    # ------------------------------------------------------------------
    # Per-frame draws
    # ------------------------------------------------------------------

    def link_attempt(self, sender: int, receiver: int) -> bool:
        """One transmission attempt on the directed link; True = on air OK."""
        model = self.plan.link
        if model is None:
            return True
        key = (sender, receiver)
        rng = self._link_rngs.get(key)
        if rng is None:
            rng = random.Random(f"{self.plan.seed}|link|{sender}|{receiver}")
            self._link_rngs[key] = rng
            self._link_state[key] = model.initial_state(rng)
        self._link_state[key] = model.step(self._link_state[key], rng)
        return model.delivers(self._link_state[key], rng)

    def corrupts(self) -> bool:
        """Does the next delivered frame arrive bit-damaged?"""
        return (
            self.plan.corruption > 0.0
            and self._corrupt_rng.random() < self.plan.corruption
        )

    def corrupt_payload(self, payload: bytes) -> bytes:
        """Flip 1-3 distinct random bits of ``payload`` (the injected
        damage; distinct so the frame is always genuinely altered)."""
        if not payload:
            return payload
        damaged = bytearray(payload)
        flips = 1 + self._corrupt_rng.randrange(3)
        for bit in self._corrupt_rng.sample(range(len(damaged) * 8), flips):
            damaged[bit // 8] ^= 1 << (bit % 8)
        return bytes(damaged)

    def duplicates(self) -> bool:
        """Does the next delivered frame arrive twice?"""
        return (
            self.plan.duplication > 0.0
            and self._dup_rng.random() < self.plan.duplication
        )


def bernoulli_from_lossy(model: LossyLinkModel) -> BernoulliLink:
    """Adapt the legacy ARQ-bundled model to the stateful link interface."""
    return BernoulliLink(delivery_probability=model.delivery_probability)
