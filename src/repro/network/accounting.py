"""Per-node cost accounting.

Every protocol run charges its work here at the moment the work is
simulated: bytes entering a node's transmitter or receiver and arithmetic
operations executed by its CPU.  The energy model (:mod:`repro.energy`) is
a pure function of the resulting counters, so communicational and
computational overheads (Figs. 14-15) and energy (Fig. 16) all come from a
single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class CostAccountant:
    """Mutable per-node counters for one protocol run.

    Attributes:
        n_nodes: network size (counter array length).
        tx_bytes: bytes transmitted per node.
        rx_bytes: bytes received per node.
        ops: arithmetic operations executed per node (the paper's
            "computational intensity ... normalized with the operational
            overhead of each arithmetic operation", Section 5.2).
        reports_generated: number of application-level reports created at
            source nodes.
        reports_delivered: number of reports that reached the sink (after
            any in-network filtering / aggregation).
    """

    n_nodes: int
    tx_bytes: np.ndarray = field(init=False)
    rx_bytes: np.ndarray = field(init=False)
    ops: np.ndarray = field(init=False)
    reports_generated: int = 0
    reports_delivered: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.tx_bytes = np.zeros(self.n_nodes, dtype=np.int64)
        self.rx_bytes = np.zeros(self.n_nodes, dtype=np.int64)
        self.ops = np.zeros(self.n_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------

    def charge_tx(self, node: int, nbytes: int) -> None:
        """Charge one transmission of ``nbytes`` at ``node``."""
        self._check(node, nbytes)
        self.tx_bytes[node] += nbytes

    def charge_rx(self, node: int, nbytes: int) -> None:
        """Charge one reception of ``nbytes`` at ``node``."""
        self._check(node, nbytes)
        self.rx_bytes[node] += nbytes

    def charge_ops(self, node: int, count: int) -> None:
        """Charge ``count`` arithmetic operations at ``node``."""
        self._check(node, count)
        self.ops[node] += count

    def charge_hop(self, sender: int, receiver: int, nbytes: int) -> None:
        """One hop-by-hop unicast: tx at the sender, rx at the receiver."""
        self.charge_tx(sender, nbytes)
        self.charge_rx(receiver, nbytes)

    def charge_local_broadcast(
        self, sender: int, receivers: List[int], nbytes: int
    ) -> None:
        """One local broadcast: a single tx, one rx per alive neighbour."""
        self.charge_tx(sender, nbytes)
        for r in receivers:
            self.charge_rx(r, nbytes)

    # ------------------------------------------------------------------
    # Batched charging (the slot-parallel transport)
    # ------------------------------------------------------------------
    #
    # Counters are int64 and addition is associative, so one scatter-add
    # per level lands on exactly the bytes/ops the per-frame calls would
    # -- order-free bit-identity, pinned by the transport differential
    # tests.  Repeated node indices accumulate (``np.add.at`` semantics).

    def charge_tx_batch(self, nodes: np.ndarray, nbytes: np.ndarray) -> None:
        """Scatter-add transmissions: ``tx_bytes[nodes[i]] += nbytes[i]``."""
        self._check_batch(nodes, nbytes)
        np.add.at(self.tx_bytes, nodes, nbytes)

    def charge_rx_batch(self, nodes: np.ndarray, nbytes: np.ndarray) -> None:
        """Scatter-add receptions: ``rx_bytes[nodes[i]] += nbytes[i]``."""
        self._check_batch(nodes, nbytes)
        np.add.at(self.rx_bytes, nodes, nbytes)

    def charge_ops_batch(self, nodes: np.ndarray, counts: np.ndarray) -> None:
        """Scatter-add operations: ``ops[nodes[i]] += counts[i]``."""
        self._check_batch(nodes, counts)
        np.add.at(self.ops, nodes, counts)

    def _check_batch(self, nodes: np.ndarray, amounts: np.ndarray) -> None:
        if len(nodes) and (
            int(nodes.min()) < 0 or int(nodes.max()) >= self.n_nodes
        ):
            raise IndexError("node index out of range")
        if len(amounts) and int(np.min(amounts)) < 0:
            raise ValueError("cannot charge a negative amount")

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def total_traffic_bytes(self) -> int:
        """Network-wide transmitted bytes (the paper's traffic metric)."""
        return int(self.tx_bytes.sum())

    def total_traffic_kb(self) -> float:
        return self.total_traffic_bytes() / 1024.0

    def total_ops(self) -> int:
        return int(self.ops.sum())

    def per_node_ops_mean(self) -> float:
        return float(self.ops.mean())

    def per_node_ops_max(self) -> int:
        return int(self.ops.max())

    def per_node_traffic_mean(self) -> float:
        return float((self.tx_bytes + self.rx_bytes).mean())

    def summary(self) -> Dict[str, float]:
        """A flat dict convenient for experiment tables."""
        return {
            "traffic_kb": self.total_traffic_kb(),
            "tx_bytes": float(self.tx_bytes.sum()),
            "rx_bytes": float(self.rx_bytes.sum()),
            "total_ops": float(self.total_ops()),
            "per_node_ops_mean": self.per_node_ops_mean(),
            "reports_generated": float(self.reports_generated),
            "reports_delivered": float(self.reports_delivered),
        }

    def _check(self, node: int, amount: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range")
        if amount < 0:
            raise ValueError("cannot charge a negative amount")
