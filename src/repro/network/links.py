"""Lossy links with ARQ retransmissions.

The paper assumes a perfect link layer, delegating reliability to MAC
retransmissions ([18], [20]) and performance-based routing ([13], [26]).
This extension makes that cost visible: each hop attempt succeeds with a
fixed probability; failures are retransmitted up to a retry budget, and
every attempt (successful or not) burns transmit energy at the sender
and listen energy at the receiver.  A report whose retries are exhausted
is lost.

With the default retry budget the end-to-end delivery rate stays high at
realistic loss rates -- the paper's "perfect link layer" assumption --
while the measured energy shows the price of that reliability, which the
extension bench sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.network.accounting import CostAccountant


@dataclass(frozen=True)
class LossyLinkModel:
    """Per-hop Bernoulli loss with bounded retransmission.

    Attributes:
        delivery_probability: chance a single transmission attempt is
            received intact.
        max_retries: retransmissions allowed after the first attempt
            (so at most ``max_retries + 1`` attempts per hop).
    """

    delivery_probability: float = 0.9
    max_retries: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.delivery_probability <= 1.0:
            raise ValueError("delivery probability must be in (0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def attempts_until_success(self, rng: random.Random) -> Optional[int]:
        """Number of attempts a hop takes, or None when the hop fails.

        Samples the geometric trial sequence directly so the accounting
        charges exactly the attempts that would go on air.
        """
        for attempt in range(1, self.max_retries + 2):
            if rng.random() < self.delivery_probability:
                return attempt
        return None

    def expected_attempts(self) -> float:
        """Mean on-air attempts per hop (including failed hops' budgets)."""
        p = self.delivery_probability
        q = 1.0 - p
        n = self.max_retries + 1
        # Expected attempts of a truncated geometric distribution.
        return sum(k * p * q ** (k - 1) for k in range(1, n + 1)) + n * q**n

    def end_to_end_delivery(self, hops: int) -> float:
        """Probability a report survives ``hops`` consecutive hops."""
        per_hop = 1.0 - (1.0 - self.delivery_probability) ** (self.max_retries + 1)
        return per_hop**hops


def charge_lossy_hop(
    model: LossyLinkModel,
    sender: int,
    receiver: int,
    nbytes: int,
    costs: CostAccountant,
    rng: random.Random,
) -> bool:
    """Simulate one hop under ``model``; charge all attempts; return success.

    The sender transmits ``nbytes`` per attempt; the receiver listens to
    every attempt (corrupted frames still occupy its radio).
    """
    attempts = model.attempts_until_success(rng)
    used = attempts if attempts is not None else model.max_retries + 1
    costs.charge_tx(sender, nbytes * used)
    costs.charge_rx(receiver, nbytes * used)
    return attempts is not None
