"""Distributed anchor-based localization (DV-hop + range refinement).

The paper assumes node positions come "from attached localization
devices such as a GPS receiver or by one of existing algorithms [6],
[16], [25]".  This substrate implements the classic two-stage scheme
those algorithms share:

1. **DV-hop initialisation** (Niculescu & Nath): anchors flood hop
   counts; the network-wide average hop length is calibrated from the
   known anchor-anchor distances; every non-anchor multilaterates its
   position from (hops x average hop length) estimates to >= 3 anchors.
2. **Range-based refinement** (the iterative least-squares core of
   [16]): nodes repeatedly re-solve their position against noisy 1-hop
   range measurements to their neighbours' current estimates, anchors
   held fixed.  A damped Gauss-Newton step per sweep.

The result is written into ``SensorNode.estimated_position``, which the
Iso-Map stack then uses transparently (``SensorNode.app_position``).
Nodes that cannot see three anchors stay unlocalised and keep GPS-truth
behaviour (in practice such nodes would not report).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.geometry import Vec, dist
from repro.network.network import SensorNetwork


@dataclass
class LocalizationResult:
    """Outcome of a localization run.

    Attributes:
        estimated: per-node estimated positions (None: anchor, dead, or
            unlocalisable).
        anchor_ids: the anchors used.
        errors: per localized node, distance between estimate and truth.
        unlocalized: ids of alive non-anchor nodes left without a fix.
    """

    estimated: List[Optional[Vec]]
    anchor_ids: List[int]
    errors: List[float] = field(default_factory=list)
    unlocalized: List[int] = field(default_factory=list)

    @property
    def mean_error(self) -> float:
        return sum(self.errors) / len(self.errors) if self.errors else 0.0

    @property
    def max_error(self) -> float:
        return max(self.errors) if self.errors else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of targeted nodes that obtained a fix."""
        total = len(self.errors) + len(self.unlocalized)
        return len(self.errors) / total if total else 1.0


def localize(
    network: SensorNetwork,
    anchor_fraction: float = 0.1,
    range_noise: float = 0.05,
    refine_iters: int = 30,
    rng: Optional[random.Random] = None,
    apply: bool = True,
) -> LocalizationResult:
    """Run DV-hop + refinement over the network.

    Args:
        network: the deployed network (alive topology is used).
        anchor_fraction: fraction of alive nodes with known positions
            (GPS-equipped buoys), chosen uniformly at random.
        range_noise: standard deviation of the multiplicative ranging
            error (0.05 = 5% of the true distance, typical of RSSI/TDoA).
        refine_iters: Gauss-Newton sweeps after DV-hop.
        rng: randomness source (anchor choice and ranging noise).
        apply: write estimates into ``SensorNode.estimated_position``.

    Raises:
        ValueError: for a fraction that yields fewer than 3 anchors.
    """
    r = rng if rng is not None else random.Random(0)
    alive = [n.node_id for n in network.nodes if n.alive]
    n_anchors = round(anchor_fraction * len(alive))
    if n_anchors < 3:
        raise ValueError("localization needs at least 3 anchors")
    anchors = sorted(r.sample(alive, n_anchors))
    anchor_set = set(anchors)

    # ---- stage 1: DV-hop ------------------------------------------------
    hops = {a: _hop_counts(network, a) for a in anchors}
    avg_hop = _average_hop_length(network, anchors, hops)

    estimates: Dict[int, Vec] = {a: network.nodes[a].position for a in anchors}
    unlocalized: List[int] = []
    for i in alive:
        if i in anchor_set:
            continue
        observations = [
            (network.nodes[a].position, hops[a][i] * avg_hop)
            for a in anchors
            if hops[a][i] is not None
        ]
        if len(observations) < 3:
            unlocalized.append(i)
            continue
        guess = _multilaterate(observations)
        if guess is None:
            unlocalized.append(i)
            continue
        estimates[i] = network.bounds.clamp(guess)

    # ---- stage 2: range refinement --------------------------------------
    ranges = _measure_ranges(network, estimates, range_noise, r)
    targets = [i for i in estimates if i not in anchor_set]
    for sweep in range(refine_iters):
        # Gauss-Seidel: update in place so corrections propagate within a
        # sweep; light damping early (estimates still coarse), none later.
        damping = 0.6 if sweep < 2 else 1.0
        for i in targets:
            obs = [
                (estimates[j], measured)
                for (j, measured) in ranges.get(i, ())
                if j in estimates
            ]
            if len(obs) < 3:
                continue
            step = _gauss_newton_step(estimates[i], obs, damping=damping)
            estimates[i] = network.bounds.clamp(step)

    # ---- package ---------------------------------------------------------
    out: List[Optional[Vec]] = [None] * network.n_nodes
    errors: List[float] = []
    for i, pos in estimates.items():
        if i in anchor_set:
            continue
        out[i] = pos
        errors.append(dist(pos, network.nodes[i].position))
    if apply:
        for i, pos in enumerate(out):
            network.nodes[i].estimated_position = pos
    return LocalizationResult(
        estimated=out, anchor_ids=anchors, errors=errors, unlocalized=unlocalized
    )


def clear_localization(network: SensorNetwork) -> None:
    """Remove estimates; nodes fall back to ground-truth positions."""
    for node in network.nodes:
        node.estimated_position = None


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _hop_counts(network: SensorNetwork, source: int) -> List[Optional[int]]:
    """BFS hop counts from ``source`` over the alive graph."""
    hops: List[Optional[int]] = [None] * network.n_nodes
    hops[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in network.adjacency[u]:
            if network.nodes[v].alive and hops[v] is None:
                hops[v] = hops[u] + 1  # type: ignore[operator]
                queue.append(v)
    return hops


def _average_hop_length(
    network: SensorNetwork,
    anchors: Sequence[int],
    hops: Dict[int, List[Optional[int]]],
) -> float:
    """DV-hop calibration: known anchor distances over their hop counts."""
    total_dist = 0.0
    total_hops = 0
    for idx, a in enumerate(anchors):
        for b in anchors[idx + 1 :]:
            h = hops[a][b]
            if h:
                total_dist += dist(
                    network.nodes[a].position, network.nodes[b].position
                )
                total_hops += h
    if total_hops == 0:
        # Degenerate (all anchors mutually unreachable); fall back to the
        # radio range, the only length scale available.
        return network.radio_range
    return total_dist / total_hops


def _multilaterate(observations: Sequence) -> Optional[Vec]:
    """Closed-form linearised multilateration.

    Subtracting the first sphere equation from the others yields a linear
    system ``A p = b`` solved by 2x2 normal equations.
    """
    (x0, y0), d0 = observations[0]
    a11 = a12 = a22 = b1 = b2 = 0.0
    for (x, y), d in observations[1:]:
        ax = 2.0 * (x - x0)
        ay = 2.0 * (y - y0)
        rhs = d0 * d0 - d * d + x * x - x0 * x0 + y * y - y0 * y0
        a11 += ax * ax
        a12 += ax * ay
        a22 += ay * ay
        b1 += ax * rhs
        b2 += ay * rhs
    det = a11 * a22 - a12 * a12
    if abs(det) < 1e-9:
        return None
    return ((a22 * b1 - a12 * b2) / det, (a11 * b2 - a12 * b1) / det)


def _measure_ranges(
    network: SensorNetwork,
    estimates: Dict[int, Vec],
    noise: float,
    rng: random.Random,
) -> Dict[int, List]:
    """Noisy 1-hop range measurements between localisable alive nodes."""
    out: Dict[int, List] = {}
    for i in estimates:
        measured = []
        for j in network.adjacency[i]:
            if j not in estimates:
                continue
            true = dist(network.nodes[i].position, network.nodes[j].position)
            measured.append((j, max(1e-6, true * (1.0 + rng.gauss(0.0, noise)))))
        out[i] = measured
    return out


def _gauss_newton_step(
    current: Vec, observations: Sequence, damping: float = 0.5
) -> Vec:
    """One damped Gauss-Newton update of a position estimate.

    Minimises sum over neighbours of (|p - q_j| - d_j)^2 starting from
    ``current``; the damping keeps the sweep stable when neighbour
    estimates are themselves still converging.
    """
    gx = gy = 0.0
    h11 = h12 = h22 = 0.0
    for (q, d) in observations:
        dx = current[0] - q[0]
        dy = current[1] - q[1]
        r = math.hypot(dx, dy)
        if r < 1e-9:
            continue
        residual = r - d
        jx = dx / r
        jy = dy / r
        gx += jx * residual
        gy += jy * residual
        h11 += jx * jx
        h12 += jx * jy
        h22 += jy * jy
    det = h11 * h22 - h12 * h12
    if abs(det) < 1e-12:
        return current
    sx = -(h22 * gx - h12 * gy) / det
    sy = -(h11 * gy - h12 * gx) / det
    return (current[0] + damping * sx, current[1] + damping * sy)
