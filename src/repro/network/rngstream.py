"""Counter-based random streams for the batched transport.

The fault engine originally drew from sequential Mersenne streams, which
made every outcome depend on *how many* draws happened before it -- fine
for a scalar walk, fatal for a batched one (resolving a level's frames as
arrays consumes draws in a different order).  This module replaces the
sequential streams with *counter-based* ones: the ``i``-th variate of a
stream is a pure function ``uniform(key, i)`` of the stream key and the
counter, so any subset of a stream can be evaluated in any order -- or
all at once as a numpy array -- and the scalar and batched transports
read byte-identical randomness.

The generator is the SplitMix64 finalizer over a Weyl sequence
(``mix64(key + (i + 1) * PHI)``), the standard stateless construction
(SplitMix64 is the seeding generator of java.util.SplittableRandom and
xoshiro).  It passes BigCrush as a sequential generator; here each
(key, counter) pair is one draw, which is the same lattice read along a
different axis.

Scalar (:func:`uniform_at`) and vectorized (:func:`uniforms_at`) paths
implement the identical arithmetic (64-bit wrapping multiplies, 53-bit
mantissa scaling) and are pinned to each other by a differential test.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

_MASK64 = (1 << 64) - 1

#: The golden-ratio Weyl increment of SplitMix64.
_PHI = 0x9E3779B97F4A7C15

_M1 = 0xBF58476D1CE4E5B9
_M2 = 0x94D049BB133111EB

#: 2**-53: scales a 53-bit integer into [0, 1).
_INV53 = 1.0 / (1 << 53)


def mix64(z: int) -> int:
    """The SplitMix64 finalizer (64-bit avalanche) on a Python int."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _M1) & _MASK64
    z = ((z ^ (z >> 27)) * _M2) & _MASK64
    return z ^ (z >> 31)


def derive_key(*parts: int) -> int:
    """A 64-bit stream key from integer parts (seed, tag, edge ids, ...).

    Sequentially folds each part through the mixer, so distinct part
    tuples land on well-separated keys even when the parts are small and
    correlated (node ids, tag constants).
    """
    k = 0x243F6A8885A308D3  # pi fractional bits: an arbitrary non-zero start
    for p in parts:
        k = mix64((k ^ (p & _MASK64)) + _PHI)
    return k


def uniform_at(key: int, counter: int) -> float:
    """The ``counter``-th uniform [0, 1) variate of stream ``key``."""
    return (mix64(key + (counter + 1) * _PHI) >> 11) * _INV53


def uniforms_at(key: int, counters: np.ndarray) -> np.ndarray:
    """Vectorized :func:`uniform_at`: one variate per counter.

    Bit-identical to the scalar path: uint64 wrapping arithmetic matches
    Python-int arithmetic masked to 64 bits, and the float scaling is the
    same single multiply.
    """
    with np.errstate(over="ignore"):
        z = np.uint64(key) + (counters.astype(np.uint64) + np.uint64(1)) * np.uint64(_PHI)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_M1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_M2)
        z = z ^ (z >> np.uint64(31))
    return (z >> np.uint64(11)).astype(np.float64) * _INV53


def uniforms_at_many(keys: np.ndarray, counters: np.ndarray) -> np.ndarray:
    """Vectorized uniforms with a per-element stream key.

    ``keys`` and ``counters`` broadcast against each other; used when one
    batch spans many edges (one key per edge, many counters per key).
    """
    with np.errstate(over="ignore"):
        z = keys.astype(np.uint64) + (counters.astype(np.uint64) + np.uint64(1)) * np.uint64(_PHI)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_M1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_M2)
        z = z ^ (z >> np.uint64(31))
    return (z >> np.uint64(11)).astype(np.float64) * _INV53


def derive_keys_array(base_key: int, parts: Iterable[int]) -> np.ndarray:
    """One derived key per part, as a uint64 array (vectorized fold).

    Equivalent to ``[derive_key_from(base_key, p) for p in parts]`` where
    the fold step matches :func:`derive_key`'s.
    """
    p = np.fromiter(parts, dtype=np.int64)
    with np.errstate(over="ignore"):
        z = (np.uint64(base_key) ^ p.astype(np.uint64)) + np.uint64(_PHI)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_M1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_M2)
        z = z ^ (z >> np.uint64(31))
    return z
