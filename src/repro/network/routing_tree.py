"""BFS spanning tree rooted at the sink.

The paper assumes the tree-based routing of TAG/TinyDB (Section 3.1): each
node gets a level equal to its hop count from the sink and forwards through
a parent one level below.  Among the candidate parents (neighbours at
``level - 1``) we pick the geographically closest to the sink, a stand-in
for the link-quality-based parent selection of [13]/[26] that keeps the
construction deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.geometry import Vec, dist


@dataclass
class RoutingTree:
    """The routing structure used by every protocol in the reproduction.

    Attributes:
        sink: node index of the root.
        level: ``level[i]`` = hop count of node i (``None`` if unreachable
            or dead).
        parent: ``parent[i]`` = next hop toward the sink (``None`` for the
            sink and unreachable nodes).
        children: inverse of ``parent``.
    """

    sink: int
    level: List[Optional[int]]
    parent: List[Optional[int]]
    children: List[List[int]]

    @property
    def depth(self) -> int:
        """Maximum level over reachable nodes (the network diameter proxy
        used by Figs. 14-16: "network diameter varies from 10 to 50 hops")."""
        levels = [l for l in self.level if l is not None]
        return max(levels) if levels else 0

    def reachable_count(self) -> int:
        return sum(1 for l in self.level if l is not None)

    def path_to_sink(self, node: int) -> List[int]:
        """Node indices from ``node`` (inclusive) to the sink (inclusive).

        Raises:
            ValueError: when the node has no route.
        """
        if self.level[node] is None:
            raise ValueError(f"node {node} is unreachable")
        path = [node]
        cur = node
        while cur != self.sink:
            nxt = self.parent[cur]
            assert nxt is not None, "reachable non-sink node must have a parent"
            path.append(nxt)
            cur = nxt
        return path

    def hops_to_sink(self, node: int) -> int:
        lvl = self.level[node]
        if lvl is None:
            raise ValueError(f"node {node} is unreachable")
        return lvl

    def subtree_order_bottom_up(self) -> List[int]:
        """Reachable nodes ordered so children precede their parents.

        In-network aggregation and filtering walk reports up the tree; this
        order lets a single pass simulate the per-epoch, level-by-level
        forwarding schedule of TAG.
        """
        order = sorted(
            (i for i, l in enumerate(self.level) if l is not None),
            key=lambda i: -(self.level[i] or 0),
        )
        return order


def build_routing_tree(
    positions: Sequence[Vec],
    adjacency: Sequence[Iterable[int]],
    sink: int,
    alive: Optional[Sequence[bool]] = None,
) -> RoutingTree:
    """Breadth-first spanning tree over the alive communication graph.

    Args:
        positions: node positions (used for deterministic parent choice).
        adjacency: disk-radio neighbours per node (any iterable: sets,
            lists, or CSR rows).  Levels and parents are independent of
            the iteration order -- BFS levels are hop distances, and the
            parent choice tie-breaks explicitly on ``(distance, id)``.
        sink: root node index (must be alive).
        alive: liveness mask; dead nodes are excluded entirely.
    """
    n = len(positions)
    live = [True] * n if alive is None else list(alive)
    if not 0 <= sink < n:
        raise ValueError("sink index out of range")
    if not live[sink]:
        raise ValueError("the sink must be alive")

    level: List[Optional[int]] = [None] * n
    parent: List[Optional[int]] = [None] * n
    children: List[List[int]] = [[] for _ in range(n)]
    sink_pos = positions[sink]

    level[sink] = 0
    queue = deque([sink])
    # Plain BFS fixes levels; parents are then chosen among the
    # (level - 1) neighbours by distance to the sink.
    order: List[int] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in adjacency[u]:
            if live[v] and level[v] is None:
                level[v] = level[u] + 1  # type: ignore[operator]
                queue.append(v)

    for u in order:
        if u == sink:
            continue
        lu = level[u]
        candidates = [
            v for v in adjacency[u] if live[v] and level[v] == lu - 1  # type: ignore[operator]
        ]
        assert candidates, "BFS-levelled node must have an upstream neighbour"
        best = min(candidates, key=lambda v: (dist(positions[v], sink_pos), v))
        parent[u] = best
        children[best].append(u)

    return RoutingTree(sink=sink, level=level, parent=parent, children=children)


def level_histogram(tree: RoutingTree) -> Dict[int, int]:
    """Number of reachable nodes per level (diagnostics and tests)."""
    hist: Dict[int, int] = {}
    for l in tree.level:
        if l is not None:
            hist[l] = hist.get(l, 0) + 1
    return hist
