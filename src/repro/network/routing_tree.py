"""BFS spanning tree rooted at the sink.

The paper assumes the tree-based routing of TAG/TinyDB (Section 3.1): each
node gets a level equal to its hop count from the sink and forwards through
a parent one level below.  Among the candidate parents (neighbours at
``level - 1``) we pick the geographically closest to the sink, a stand-in
for the link-quality-based parent selection of [13]/[26] that keeps the
construction deterministic.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.geometry import Vec, dist
from repro.network.topology import CsrAdjacency


@dataclass
class RoutingTree:
    """The routing structure used by every protocol in the reproduction.

    Attributes:
        sink: node index of the root.
        level: ``level[i]`` = hop count of node i (``None`` if unreachable
            or dead).
        parent: ``parent[i]`` = next hop toward the sink (``None`` for the
            sink and unreachable nodes).
        children: inverse of ``parent``.
    """

    sink: int
    level: List[Optional[int]]
    parent: List[Optional[int]]
    children: List[List[int]]

    @property
    def depth(self) -> int:
        """Maximum level over reachable nodes (the network diameter proxy
        used by Figs. 14-16: "network diameter varies from 10 to 50 hops")."""
        levels = [l for l in self.level if l is not None]
        return max(levels) if levels else 0

    def reachable_count(self) -> int:
        return sum(1 for l in self.level if l is not None)

    def path_to_sink(self, node: int) -> List[int]:
        """Node indices from ``node`` (inclusive) to the sink (inclusive).

        Raises:
            ValueError: when the node has no route.
        """
        if self.level[node] is None:
            raise ValueError(f"node {node} is unreachable")
        path = [node]
        cur = node
        while cur != self.sink:
            nxt = self.parent[cur]
            assert nxt is not None, "reachable non-sink node must have a parent"
            path.append(nxt)
            cur = nxt
        return path

    def hops_to_sink(self, node: int) -> int:
        lvl = self.level[node]
        if lvl is None:
            raise ValueError(f"node {node} is unreachable")
        return lvl

    def subtree_order_bottom_up(self) -> List[int]:
        """Reachable nodes ordered so children precede their parents.

        In-network aggregation and filtering walk reports up the tree; this
        order lets a single pass simulate the per-epoch, level-by-level
        forwarding schedule of TAG.
        """
        order = sorted(
            (i for i, l in enumerate(self.level) if l is not None),
            key=lambda i: -(self.level[i] or 0),
        )
        return order


def build_routing_tree(
    positions: Sequence[Vec],
    adjacency: Union[CsrAdjacency, Sequence[Iterable[int]]],
    sink: int,
    alive: Optional[Sequence[bool]] = None,
) -> RoutingTree:
    """Breadth-first spanning tree over the alive communication graph.

    Args:
        positions: node positions (used for deterministic parent choice).
        adjacency: disk-radio neighbours per node.  A
            :class:`~repro.network.topology.CsrAdjacency` takes the
            vectorized frontier-array path; any other per-node iterable
            (sets, lists) takes the scalar reference.  Both produce the
            identical tree: BFS levels are hop distances, the parent
            choice tie-breaks explicitly on ``(distance, id)``, and the
            frontier path reproduces the FIFO discovery order exactly
            (pinned by a differential test).
        sink: root node index (must be alive).
        alive: liveness mask; dead nodes are excluded entirely.
    """
    if isinstance(adjacency, CsrAdjacency):
        return _build_routing_tree_csr(positions, adjacency, sink, alive)
    return build_routing_tree_reference(positions, adjacency, sink, alive)


def _build_routing_tree_csr(
    positions: Sequence[Vec],
    csr: CsrAdjacency,
    sink: int,
    alive: Optional[Sequence[bool]],
) -> RoutingTree:
    """Array-frontier BFS + segmented parent argmin over a CSR graph.

    Equivalent to :func:`build_routing_tree_reference` result-for-result:
    each BFS ring is discovered with one gather (first occurrence in the
    concatenated candidate array is exactly the FIFO discovery order),
    and parents are picked per node by a segmented ``(distance, id)``
    argmin using distances computed with the same scalar ``math.hypot``
    the reference's ``dist`` uses, so float ties break identically.
    """
    n = len(positions)
    if not 0 <= sink < n:
        raise ValueError("sink index out of range")
    if alive is None:
        live = np.ones(n, dtype=bool)
    else:
        live = np.asarray(list(alive), dtype=bool)
    if not live[sink]:
        raise ValueError("the sink must be alive")

    indptr, indices = csr.indptr, csr.indices
    level_arr = np.full(n, -1, dtype=np.int64)
    level_arr[sink] = 0
    rings = [np.array([sink], dtype=np.int64)]
    frontier = rings[0]
    lvl = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        base = np.repeat(starts, counts)
        within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        cand = indices[base + within]
        cand = cand[live[cand] & (level_arr[cand] < 0)]
        if cand.size == 0:
            break
        uniq, first = np.unique(cand, return_index=True)
        ring = uniq[np.argsort(first, kind="stable")]
        lvl += 1
        level_arr[ring] = lvl
        rings.append(ring)
        frontier = ring

    visited = np.concatenate(rings)
    non_sink = visited[1:]
    children: List[List[int]] = [[] for _ in range(n)]
    parent_arr = np.full(n, -1, dtype=np.int64)
    if non_sink.size:
        # Distance of every node to the sink, via the identical scalar
        # arithmetic the reference path uses (np.hypot may differ in the
        # last ulp, which would flip distance ties).
        sx, sy = positions[sink]
        d = np.fromiter(
            (math.hypot(p[0] - sx, p[1] - sy) for p in positions),
            dtype=np.float64,
            count=n,
        )
        starts = indptr[non_sink]
        counts = indptr[non_sink + 1] - starts
        total = int(counts.sum())
        seg = np.repeat(np.arange(len(non_sink)), counts)
        base = np.repeat(starts, counts)
        within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        nb = indices[base + within]
        upstream = live[nb] & (level_arr[nb] == level_arr[non_sink][seg] - 1)
        nb = nb[upstream]
        seg = seg[upstream]
        order_idx = np.lexsort((nb, d[nb], seg))
        seg_sorted = seg[order_idx]
        is_first = np.ones(len(seg_sorted), dtype=bool)
        is_first[1:] = seg_sorted[1:] != seg_sorted[:-1]
        firsts = order_idx[is_first]
        assert len(firsts) == len(
            non_sink
        ), "BFS-levelled node must have an upstream neighbour"
        best = nb[firsts]
        parent_arr[non_sink] = best
        for u, p in zip(non_sink.tolist(), best.tolist()):
            children[p].append(u)

    level: List[Optional[int]] = [
        int(l) if l >= 0 else None for l in level_arr.tolist()
    ]
    parent: List[Optional[int]] = [
        int(p) if p >= 0 else None for p in parent_arr.tolist()
    ]
    return RoutingTree(sink=sink, level=level, parent=parent, children=children)


def build_routing_tree_reference(
    positions: Sequence[Vec],
    adjacency: Sequence[Iterable[int]],
    sink: int,
    alive: Optional[Sequence[bool]] = None,
) -> RoutingTree:
    """The scalar FIFO-BFS builder (differential-test reference)."""
    n = len(positions)
    live = [True] * n if alive is None else list(alive)
    if not 0 <= sink < n:
        raise ValueError("sink index out of range")
    if not live[sink]:
        raise ValueError("the sink must be alive")

    level: List[Optional[int]] = [None] * n
    parent: List[Optional[int]] = [None] * n
    children: List[List[int]] = [[] for _ in range(n)]
    sink_pos = positions[sink]

    level[sink] = 0
    queue = deque([sink])
    # Plain BFS fixes levels; parents are then chosen among the
    # (level - 1) neighbours by distance to the sink.
    order: List[int] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in adjacency[u]:
            if live[v] and level[v] is None:
                level[v] = level[u] + 1  # type: ignore[operator]
                queue.append(v)

    for u in order:
        if u == sink:
            continue
        lu = level[u]
        candidates = [
            v for v in adjacency[u] if live[v] and level[v] == lu - 1  # type: ignore[operator]
        ]
        assert candidates, "BFS-levelled node must have an upstream neighbour"
        best = min(candidates, key=lambda v: (dist(positions[v], sink_pos), v))
        parent[u] = best
        children[best].append(u)

    return RoutingTree(sink=sink, level=level, parent=parent, children=children)


def level_histogram(tree: RoutingTree) -> Dict[int, int]:
    """Number of reachable nodes per level (diagnostics and tests)."""
    hist: Dict[int, int] = {}
    for l in tree.level:
        if l is not None:
            hist[l] = hist.get(l, 0) + 1
    return hist
