"""Iso-Map: energy-efficient contour mapping in wireless sensor networks.

A full reproduction of Li & Liu's Iso-Map protocol (ICDCS 2007; extended
in IEEE TKDE 22(5), 2010): the protocol itself, the WSN simulation
substrate it runs on, the four baseline protocols the paper compares
against, the evaluation metrics, and a benchmark harness regenerating
every table and figure of the paper's evaluation.

Quick tour::

    from repro import (
        ContourQuery, FilterConfig, IsoMapProtocol,
        SensorNetwork, make_harbor_field,
    )

    field = make_harbor_field()
    network = SensorNetwork.random_deploy(field, n=2500, radio_range=1.5)
    query = ContourQuery(value_lo=6.0, value_hi=12.0, granularity=2.0)
    result = IsoMapProtocol(query, FilterConfig(30.0, 4.0)).run(network)
    print(result.contour_map.band_at((25.0, 25.0)))

Subpackages:

- :mod:`repro.core` -- the Iso-Map protocol (detection, gradient
  regression, filtering, Voronoi reconstruction, regulation).
- :mod:`repro.field` -- scalar fields, the harbor trace stand-in,
  marching-squares ground truth.
- :mod:`repro.network` -- deployment, disk radio, routing tree, failures,
  cost accounting.
- :mod:`repro.energy` -- the Mica2 energy model.
- :mod:`repro.baselines` -- TinyDB, INLR, eScan, data suppression.
- :mod:`repro.metrics` -- accuracy, Hausdorff distance, gradient error.
- :mod:`repro.analysis` -- scaling fits, Table 1.
- :mod:`repro.experiments` -- one module per paper figure/table.
- :mod:`repro.viz` -- ASCII contour-map rendering.
"""

from repro.core import (
    ContourMap,
    ContourQuery,
    FilterConfig,
    IsoMapProtocol,
    IsoMapResult,
    IsolineReport,
)
from repro.energy import Mica2Model, energy_from_costs
from repro.field import ScalarField, make_harbor_field
from repro.geometry import BoundingBox
from repro.metrics import mapping_accuracy
from repro.network import CostAccountant, SensorNetwork

__version__ = "1.0.0"

__all__ = [
    "BoundingBox",
    "ContourMap",
    "ContourQuery",
    "CostAccountant",
    "FilterConfig",
    "IsoMapProtocol",
    "IsoMapResult",
    "IsolineReport",
    "Mica2Model",
    "ScalarField",
    "SensorNetwork",
    "energy_from_costs",
    "make_harbor_field",
    "mapping_accuracy",
    "__version__",
]
