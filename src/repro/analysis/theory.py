"""Table 1: asymptotic overhead comparison of the five protocols.

The paper's Table 1 summarises Section 4's analysis.  The rows below are
that analysis verbatim; :func:`table1` renders them, and the
``bench_table1_overheads`` harness sits the *measured* scaling exponents
next to the claimed orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class OverheadRow:
    """One protocol's asymptotic profile (Table 1).

    Attributes:
        protocol: protocol name.
        reports: asymptotic number of generated reports.
        computation: asymptotic network-wide computation.
        deployment: sensor-deployment requirement.
    """

    protocol: str
    reports: str
    computation: str
    deployment: str


#: Section 4.3's comparison, row for row.
TABLE1_ROWS: List[OverheadRow] = [
    OverheadRow("TinyDB", "n", "O(n)", "grid"),
    OverheadRow("eScan", "n", "O(n^4) worst case", "any"),
    OverheadRow("INLR", "n", "Omega(n^1.5)", "grid"),
    OverheadRow("Data suppression", "O(n)", "Omega(n*d), d = 2-hop degree", "grid"),
    OverheadRow("Iso-Map", "O(sqrt(n))", "O(n)", "any"),
]


def table1() -> str:
    """Render Table 1 as a fixed-width text table."""
    header = ("Protocol", "Generated reports", "Network computation", "Deployment")
    rows = [header] + [
        (r.protocol, r.reports, r.computation, r.deployment) for r in TABLE1_ROWS
    ]
    widths = [max(len(row[c]) for row in rows) for c in range(4)]
    lines = []
    for k, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if k == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
