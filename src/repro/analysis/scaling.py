"""Power-law fits on measured scaling data.

Theorem 4.1 claims the number of isoline nodes grows as O(sqrt(n)); the
traffic comparison claims O(n) for the full-collection protocols.  The
benchmark harness measures counts over an ``n`` sweep and fits
``y = a * n^b`` by least squares in log-log space; the exponent ``b`` is
the reproduced claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """The fit ``y = coefficient * x ** exponent``.

    Attributes:
        exponent: the fitted power.
        coefficient: the fitted prefactor.
        r_squared: goodness of fit in log-log space.
    """

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log y = log a + b log x``.

    Raises:
        ValueError: with fewer than two points or non-positive data
            (logarithms would be undefined).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must parallel")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fits need positive data")

    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((v - mx) ** 2 for v in lx)
    sxy = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    if sxx == 0:
        raise ValueError("all x values identical; exponent is undefined")
    b = sxy / sxx
    a = my - b * mx

    ss_tot = sum((v - my) ** 2 for v in ly)
    ss_res = sum((yv - (a + b * xv)) ** 2 for xv, yv in zip(lx, ly))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=b, coefficient=math.exp(a), r_squared=r2)
