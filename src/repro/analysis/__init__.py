"""Analysis helpers: scaling fits and the paper's asymptotic comparison.

- :mod:`repro.analysis.scaling` -- log-log power-law fits used to verify
  Theorem 4.1 (isoline-node count ~ sqrt(n)) and the per-protocol traffic
  orders empirically.
- :mod:`repro.analysis.theory` -- the closed-form overhead comparison of
  Table 1.
"""

from repro.analysis.scaling import PowerLawFit, fit_power_law
from repro.analysis.theory import TABLE1_ROWS, table1

__all__ = ["PowerLawFit", "fit_power_law", "TABLE1_ROWS", "table1"]
