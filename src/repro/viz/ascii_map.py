"""ASCII rendering of band rasters.

The examples print the true map next to a protocol's reconstruction, the
text-mode analogue of the paper's Fig. 10.  Band indices map to a density
ramp; row 0 of the raster is the *bottom* of the field, so rows are
emitted last-first to keep north up.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Character ramp indexed by band (wraps for deep maps).
DEFAULT_RAMP = " .:-=+*#%@"


def render_raster(raster: np.ndarray, ramp: str = DEFAULT_RAMP) -> str:
    """Render a 2-D integer band raster as ASCII art."""
    raster = np.asarray(raster)
    if raster.ndim != 2:
        raise ValueError("raster must be 2-D")
    if not ramp:
        raise ValueError("ramp must be non-empty")
    lines: List[str] = []
    for row in raster[::-1]:  # top of the field first
        lines.append("".join(ramp[int(v) % len(ramp)] for v in row))
    return "\n".join(lines)


def render_band_map(band_map, nx: int = 60, ny: int = 30, ramp: str = DEFAULT_RAMP) -> str:
    """Render anything exposing ``classify_raster(nx, ny)``."""
    return render_raster(band_map.classify_raster(nx, ny), ramp)


def side_by_side(left: str, right: str, gap: int = 4, titles=None) -> str:
    """Join two ASCII blocks horizontally (pads the shorter one)."""
    l_lines = left.splitlines()
    r_lines = right.splitlines()
    width = max((len(s) for s in l_lines), default=0)
    height = max(len(l_lines), len(r_lines))
    l_lines += [""] * (height - len(l_lines))
    r_lines += [""] * (height - len(r_lines))
    out: List[str] = []
    if titles is not None:
        lt, rt = titles
        out.append(lt.ljust(width + gap) + rt)
    for a, b in zip(l_lines, r_lines):
        out.append(a.ljust(width + gap) + b)
    return "\n".join(out)
