"""Terminal visualisation of contour maps (examples and debugging)."""

from repro.viz.ascii_map import render_band_map, render_raster, side_by_side

__all__ = ["render_band_map", "render_raster", "side_by_side"]
