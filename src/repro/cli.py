"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``map``        -- run one Iso-Map epoch over the harbor field and print
                    stats (optionally the ASCII map).
- ``compare``    -- run all five protocols and print the cost/fidelity
                    matrix.
- ``experiment`` -- regenerate one paper figure/table by id (e.g.
                    ``fig11a``, ``fig14a``, ``table1``, ``theorem41``) or
                    an ablation/extension id.
- ``serve``      -- run the async contour-map serving layer under
                    simulated client load and print a traffic report.
- ``theory``     -- print the paper's analytical Table 1.
- ``list``       -- list available experiment ids.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional


def _experiment_registry() -> Dict[str, Callable]:
    """Lazy registry: experiment id -> runner taking (jobs, cache_dir).

    Sweep experiments ported to :mod:`repro.experiments.runner` honour
    the worker count and result cache; the remaining single-shot
    experiments ignore them.
    """
    from repro.experiments.ablations import (
        run_ablation_filtering_placement,
        run_ablation_gradient,
        run_ablation_localization,
        run_ablation_regression,
        run_ablation_regulation,
    )
    from repro.experiments.extensions import (
        run_continuous_monitoring,
        run_localized_isomap,
        run_lossy_links,
    )
    from repro.experiments.fig07_gradient_error import run_fig07
    from repro.experiments.fig_continuous import run_fig_continuous
    from repro.experiments.fig_faults import run_fig_faults
    from repro.experiments.fig_predict import run_fig_predict
    from repro.experiments.fig_simplify import run_fig_simplify
    from repro.experiments.fig10_maps import run_fig10
    from repro.experiments.fig11_accuracy import run_fig11a, run_fig11b
    from repro.experiments.fig12_hausdorff import run_fig12a, run_fig12b
    from repro.experiments.fig13_filtering import run_fig09, run_fig13
    from repro.experiments.fig14_traffic import (
        MILLION_SCALING_N,
        TINYDB_MAX_N,
        run_fig14_scaling,
        run_fig14a,
        run_fig14b,
    )
    from repro.experiments.fig15_computation import run_fig15
    from repro.experiments.fig16_energy import run_fig16, run_fig16_scaling
    from repro.experiments.table1_overheads import run_table1, run_theorem41

    return {
        "fig07": lambda jobs, cache: run_fig07(seeds=(1,)),
        "fig09": lambda jobs, cache: run_fig09(),
        "fig10": lambda jobs, cache: run_fig10(seed=1),
        "fig11a": lambda jobs, cache: run_fig11a(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "fig11b": lambda jobs, cache: run_fig11b(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "fig12a": lambda jobs, cache: run_fig12a(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "fig12b": lambda jobs, cache: run_fig12b(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "fig13": lambda jobs, cache: run_fig13(seeds=(1,)),
        "fig14a": lambda jobs, cache: run_fig14a(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "fig14b": lambda jobs, cache: run_fig14b(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "fig14_scaling": lambda jobs, cache: run_fig14_scaling(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        # Million-node regime: faulted, tile-sharded epochs with TinyDB
        # blanked where its epoch is infeasible.  Hours of single-core
        # compute at n=10^6 -- run with a cache_dir.
        "fig14_scaling_xl": lambda jobs, cache: run_fig14_scaling(
            ns=MILLION_SCALING_N, seeds=(1,), jobs=jobs, cache_dir=cache,
            fault_intensity=0.5, tile_size="auto", tinydb_max_n=TINYDB_MAX_N,
        ),
        "fig15": lambda jobs, cache: run_fig15(seeds=(1,)),
        "fig16": lambda jobs, cache: run_fig16(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "fig16_scaling": lambda jobs, cache: run_fig16_scaling(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "fig16_scaling_xl": lambda jobs, cache: run_fig16_scaling(
            ns=MILLION_SCALING_N, seeds=(1,), jobs=jobs, cache_dir=cache,
            fault_intensity=0.5, tile_size="auto", tinydb_max_n=TINYDB_MAX_N,
        ),
        "fig_continuous": lambda jobs, cache: run_fig_continuous(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "fig_faults": lambda jobs, cache: run_fig_faults(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "fig_predict": lambda jobs, cache: run_fig_predict(
            seeds=(7,), jobs=jobs, cache_dir=cache
        ),
        "fig_simplify": lambda jobs, cache: run_fig_simplify(
            seeds=(1,), jobs=jobs, cache_dir=cache
        ),
        "table1": lambda jobs, cache: run_table1(seeds=(1,)),
        "theorem41": lambda jobs, cache: run_theorem41(seeds=(1,)),
        "ablation_gradient": lambda jobs, cache: run_ablation_gradient(seeds=(1,)),
        "ablation_filter_placement": lambda jobs, cache: run_ablation_filtering_placement(
            seeds=(1,)
        ),
        "ablation_regulation": lambda jobs, cache: run_ablation_regulation(
            seeds=(1,)
        ),
        "ablation_regression": lambda jobs, cache: run_ablation_regression(
            seeds=(1,)
        ),
        "ablation_localization": lambda jobs, cache: run_ablation_localization(
            seeds=(1,)
        ),
        "ext_lossy_links": lambda jobs, cache: run_lossy_links(seeds=(1,)),
        "ext_continuous": lambda jobs, cache: run_continuous_monitoring(),
        "ext_localization": lambda jobs, cache: run_localized_isomap(seeds=(1,)),
    }


def _cmd_map(args: argparse.Namespace) -> int:
    from repro import profiling
    from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
    from repro.energy import energy_from_costs
    from repro.field import make_harbor_field
    from repro.field.harbor import DEFAULT_ISOLEVELS
    from repro.metrics import mapping_accuracy
    from repro.network import SensorNetwork
    from repro.viz import render_band_map

    if args.profile:
        profiling.reset()
        profiling.enable()
    field = make_harbor_field(seed=args.field_seed)
    network = SensorNetwork.random_deploy(
        field, args.nodes, radio_range=args.radio_range, seed=args.seed
    )
    query = ContourQuery(6.0, 12.0, 2.0, epsilon_fraction=args.epsilon)
    protocol = IsoMapProtocol(query, FilterConfig(args.sa, args.sd))
    result = protocol.run(network)

    accuracy = mapping_accuracy(field, result.contour_map, list(DEFAULT_ISOLEVELS))
    energy = energy_from_costs(result.costs)
    print(f"nodes                : {network.n_nodes} (degree {network.average_degree():.1f})")
    print(f"isoline nodes        : {len(result.detection.isoline_nodes)}")
    print(f"reports delivered    : {len(result.delivered_reports)}")
    print(f"traffic              : {result.costs.total_traffic_kb():.1f} KB")
    print(f"mapping accuracy     : {accuracy:.1%}")
    print(f"per-node energy      : {energy.per_node_mean_mj():.3f} mJ")
    if args.render:
        print()
        print(render_band_map(result.contour_map, nx=args.width, ny=args.height))
    if args.profile:
        print()
        print(profiling.format_table("sink-side stage profile"))
    return 0


def _cmd_compare_impl(args: argparse.Namespace) -> int:
    from repro.baselines import (
        DataSuppressionProtocol,
        EScanProtocol,
        INLRProtocol,
        TinyDBProtocol,
    )
    from repro.core import ContourQuery, FilterConfig, IsoMapProtocol
    from repro.energy import energy_from_costs
    from repro.field import make_harbor_field
    from repro.field.harbor import DEFAULT_ISOLEVELS
    from repro.metrics import mapping_accuracy
    from repro.network import SensorNetwork

    field = make_harbor_field()
    levels = list(DEFAULT_ISOLEVELS)
    random_net = SensorNetwork.random_deploy(field, args.nodes, seed=args.seed)
    grid_net = SensorNetwork.grid_deploy(field, args.nodes, seed=args.seed)

    print(f"{'protocol':12s} {'delivered':>9s} {'traffic KB':>10s} {'ops/node':>9s} "
          f"{'energy mJ':>9s} {'accuracy':>8s}")
    iso = IsoMapProtocol(ContourQuery(6.0, 12.0, 2.0), FilterConfig(30, 4)).run(random_net)
    rows = [("iso-map", len(iso.delivered_reports), iso.costs,
             mapping_accuracy(field, iso.contour_map, levels))]
    for proto, net in (
        (TinyDBProtocol(levels), grid_net),
        (INLRProtocol(levels), grid_net),
        (EScanProtocol(levels), random_net),
        (DataSuppressionProtocol(levels), grid_net),
    ):
        run = proto.run(net)
        rows.append((run.name, run.reports_delivered, run.costs,
                     mapping_accuracy(field, run.band_map, levels)))
    for name, delivered, costs, acc in rows:
        e = energy_from_costs(costs)
        print(f"{name:12s} {delivered:9d} {costs.total_traffic_kb():10.1f} "
              f"{costs.per_node_ops_mean():9.1f} {e.per_node_mean_mj():9.3f} {acc:8.1%}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro import profiling

    registry = _experiment_registry()
    if args.id not in registry:
        print(f"unknown experiment {args.id!r}; try: python -m repro list",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.profile:
        profiling.reset()
        profiling.enable()
    result = registry[args.id](args.jobs, args.cache)
    print(result.to_table())
    if args.profile:
        print()
        print(profiling.format_table("stage profile (all workers)"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serving import ChaosPlan, MapService, SessionConfig, run_load
    from repro.serving.supervisor import SupervisorConfig

    if args.scenario not in ("steady", "tide", "storm", "pulse", "front"):
        print(f"unknown scenario {args.scenario!r}", file=sys.stderr)
        return 2
    if not 0.0 <= args.chaos <= 1.0:
        print("--chaos must be in [0, 1]", file=sys.stderr)
        return 2
    if args.simplify_tolerance is not None and args.simplify_tolerance < 0:
        print("--simplify-tolerance must be non-negative", file=sys.stderr)
        return 2
    if args.simplified_subscribers and args.simplify_tolerance is None:
        print("--simplified-subscribers needs --simplify-tolerance "
              "(the session must produce the SIMPLIFIED stream)",
              file=sys.stderr)
        return 2
    if args.prediction_tolerance is not None and args.prediction_tolerance <= 0:
        print("--prediction-tolerance must be positive", file=sys.stderr)
        return 2
    if args.prediction_heartbeat < 0:
        print("--prediction-heartbeat must be non-negative", file=sys.stderr)
        return 2
    config = SessionConfig(
        query_id="harbor",
        n_nodes=args.nodes,
        seed=args.seed,
        field="harbor",
        scenario=args.scenario,
        value_lo=6.0,
        value_hi=12.0,
        granularity=2.0,
        epsilon_fraction=0.05,
        radio_range=1.5,
        simplify_tolerance=args.simplify_tolerance,
        prediction_tolerance=args.prediction_tolerance,
        prediction_heartbeat=args.prediction_heartbeat,
    )
    chaos = ChaosPlan.at_intensity(args.chaos, seed=args.chaos_seed)
    supervision = None
    if not chaos.is_null:
        # Injected hangs burn a full compute deadline each; keep it
        # short so a chaos demo finishes in seconds, not minutes.
        supervision = SupervisorConfig(
            compute_timeout=1.0, backoff_base=0.005, backoff_cap=0.04
        )

    async def run():
        service = MapService(
            [config], n_shards=args.shards,
            supervision=supervision, chaos=chaos,
        )
        loop = asyncio.get_running_loop()
        interrupted = asyncio.Event()
        handled = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, interrupted.set)
                handled.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # platforms/threads without loop signal support
        load = asyncio.ensure_future(run_load(
            service,
            "harbor",
            epochs=args.epochs,
            n_snapshot_clients=args.clients,
            n_subscribers=args.subscribers,
            n_simplified_subscribers=args.simplified_subscribers,
            epoch_interval=args.interval,
        ))
        stopper = asyncio.ensure_future(interrupted.wait())
        try:
            await asyncio.wait(
                [load, stopper], return_when=asyncio.FIRST_COMPLETED
            )
            if interrupted.is_set() and not load.done():
                load.cancel()
                try:
                    await load
                except asyncio.CancelledError:
                    pass
                # run_load stops the service itself on the happy path;
                # on interrupt we shut it down here -- draining
                # subscribers, then closing the shard pool (which kills
                # stragglers rather than hang).
                await service.stop(drain=True)
                return None
            return await load
        finally:
            stopper.cancel()
            for sig in handled:
                loop.remove_signal_handler(sig)

    report = asyncio.run(run())
    if report is None:
        print("interrupted: service stopped cleanly", flush=True)
        return 0
    print(report.to_table())
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.analysis import table1

    print(table1())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for key in sorted(_experiment_registry()):
        print(key)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Iso-Map reproduction: run the protocol, the baselines, "
        "or any paper experiment.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_map = sub.add_parser("map", help="run one Iso-Map epoch on the harbor field")
    p_map.add_argument("--nodes", type=int, default=2500)
    p_map.add_argument("--seed", type=int, default=1)
    p_map.add_argument("--field-seed", type=int, default=2003)
    p_map.add_argument("--radio-range", type=float, default=1.5)
    p_map.add_argument("--epsilon", type=float, default=0.05,
                       help="border region as a fraction of the granularity")
    p_map.add_argument("--sa", type=float, default=30.0,
                       help="angular separation filter threshold (deg)")
    p_map.add_argument("--sd", type=float, default=4.0,
                       help="distance separation filter threshold")
    p_map.add_argument("--render", action="store_true", help="print the ASCII map")
    p_map.add_argument("--width", type=int, default=64)
    p_map.add_argument("--height", type=int, default=28)
    p_map.add_argument("--profile", action="store_true",
                       help="print a sink-side stage timing breakdown")
    p_map.set_defaults(func=_cmd_map)

    p_cmp = sub.add_parser("compare", help="run all five protocols")
    p_cmp.add_argument("--nodes", type=int, default=2500)
    p_cmp.add_argument("--seed", type=int, default=1)
    p_cmp.set_defaults(func=_cmd_compare_impl)

    p_exp = sub.add_parser("experiment", help="regenerate one paper experiment")
    p_exp.add_argument("id", help="experiment id (see: python -m repro list)")
    p_exp.add_argument("--jobs", type=int, default=1,
                       help="worker processes for sweep experiments "
                       "(results are identical at any job count)")
    p_exp.add_argument("--cache", default=None, metavar="DIR",
                       help="cache sweep-point results in DIR and reuse them")
    p_exp.add_argument("--profile", action="store_true",
                       help="print a stage timing breakdown after the table "
                       "(worker-process stages are merged in)")
    p_exp.set_defaults(func=_cmd_experiment)

    p_srv = sub.add_parser(
        "serve", help="run the map-serving layer under simulated client load"
    )
    p_srv.add_argument("--nodes", type=int, default=2500)
    p_srv.add_argument("--seed", type=int, default=1)
    p_srv.add_argument("--epochs", type=int, default=6)
    p_srv.add_argument("--clients", type=int, default=16,
                       help="concurrent snapshot-polling clients")
    p_srv.add_argument("--subscribers", type=int, default=200,
                       help="concurrent delta-stream subscribers")
    p_srv.add_argument("--simplify-tolerance", type=float, default=None,
                       help="also produce the SIMPLIFIED stream at this "
                       "Hausdorff tolerance (field units); enables "
                       "--simplified-subscribers")
    p_srv.add_argument("--simplified-subscribers", type=int, default=0,
                       help="subscribers negotiating the SIMPLIFIED "
                       "encoding (requires --simplify-tolerance)")
    p_srv.add_argument("--prediction-tolerance", type=float, default=None,
                       help="run the monitor with model-predictive report "
                       "suppression at this position tolerance (field "
                       "units); deltas are tagged DELTA_PREDICTED")
    p_srv.add_argument("--prediction-heartbeat", type=int, default=8,
                       help="max consecutive suppressed epochs per track "
                       "(staleness bound; 0 disables suppression)")
    p_srv.add_argument("--interval", type=float, default=0.0,
                       help="seconds between epochs")
    p_srv.add_argument("--shards", type=int, default=0,
                       help="worker processes (0 = compute inline)")
    p_srv.add_argument("--scenario", default="tide",
                       help="field evolution: steady, tide, storm, pulse "
                       "or front (rigid steady drift)")
    p_srv.add_argument("--chaos", type=float, default=0.0,
                       help="seeded failure-injection intensity in [0, 1] "
                       "(worker kills, hangs, drops, corruption)")
    p_srv.add_argument("--chaos-seed", type=int, default=0,
                       help="seed of the chaos plan's counter-based draws")
    p_srv.set_defaults(func=_cmd_serve)

    p_theory = sub.add_parser("theory", help="print the analytical Table 1")
    p_theory.set_defaults(func=_cmd_theory)

    p_list = sub.add_parser("list", help="list experiment ids")
    p_list.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into something that closed early (e.g. head).
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
